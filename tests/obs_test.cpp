//===- tests/obs_test.cpp - Telemetry subsystem tests --------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "core/Stats.h"
#include "ir/Parser.h"
#include "obs/Json.h"
#include "obs/Report.h"
#include "obs/Telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

using namespace reticle;
using obs::Json;

namespace {

/// Tests share the process-wide registry; each starts from a clean slate.
class Obs : public ::testing::Test {
protected:
  void SetUp() override { obs::resetForTest(); }
  void TearDown() override { obs::resetForTest(); }
};

const Json *event(const Json &Trace, const std::string &Name) {
  const Json *Events = Trace.find("traceEvents");
  if (!Events || !Events->isArray())
    return nullptr;
  for (const Json &E : Events->items()) {
    const Json *N = E.isObject() ? E.find("name") : nullptr;
    if (N && N->isString() && N->asString() == Name)
      return &E;
  }
  return nullptr;
}

double numField(const Json &Event, const char *Key) {
  const Json *V = Event.find(Key);
  EXPECT_NE(V, nullptr) << "missing field " << Key;
  return V ? V->asDouble() : 0.0;
}

} // namespace

TEST_F(Obs, JsonRoundTrip) {
  Json Doc = Json::object();
  Doc.set("int", 42);
  Doc.set("neg", int64_t(-7));
  Doc.set("pi", 3.25);
  Doc.set("flag", true);
  Doc.set("none", Json());
  Doc.set("text", "a \"quoted\" line\nwith\ttabs and unicode \xE2\x9C\x93");
  Json Arr = Json::array();
  Arr.push(1).push("two").push(Json::object());
  Doc.set("arr", std::move(Arr));

  for (unsigned Indent : {0u, 2u}) {
    Result<Json> Back = Json::parse(Doc.str(Indent));
    ASSERT_TRUE(Back.ok()) << Back.error();
    EXPECT_EQ(Back.value().find("int")->asInt(), 42);
    EXPECT_EQ(Back.value().find("neg")->asInt(), -7);
    EXPECT_DOUBLE_EQ(Back.value().find("pi")->asDouble(), 3.25);
    EXPECT_TRUE(Back.value().find("flag")->asBool());
    EXPECT_TRUE(Back.value().find("none")->isNull());
    EXPECT_EQ(Back.value().find("text")->asString(),
              Doc.find("text")->asString());
    EXPECT_EQ(Back.value().find("arr")->size(), 3u);
  }
}

TEST_F(Obs, JsonEscapesControlCharacters) {
  // Every control character must round-trip: short escapes where JSON has
  // them, \u00XX otherwise.
  std::string AllControls;
  for (char C = 1; C < 0x20; ++C)
    AllControls.push_back(C);
  AllControls.push_back('\0'); // keep the embedded NUL off index 0
  AllControls = std::string("a") + AllControls + "z";

  std::string Quoted = Json::quote(AllControls);
  EXPECT_NE(Quoted.find("\\n"), std::string::npos);
  EXPECT_NE(Quoted.find("\\t"), std::string::npos);
  EXPECT_NE(Quoted.find("\\u0000"), std::string::npos);
  EXPECT_NE(Quoted.find("\\u001f"), std::string::npos);
  // Nothing below 0x20 may appear raw inside the literal.
  for (char C : Quoted)
    EXPECT_GE(static_cast<unsigned char>(C), 0x20u);

  Result<Json> Back = Json::parse(Quoted);
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_EQ(Back.value().asString(), AllControls);
}

TEST_F(Obs, JsonParsesUnicodeEscapes) {
  // BMP escape, raw UTF-8 pass-through, and a surrogate pair.
  Result<Json> Bmp = Json::parse("\"caf\\u00e9\"");
  ASSERT_TRUE(Bmp.ok()) << Bmp.error();
  EXPECT_EQ(Bmp.value().asString(), "caf\xC3\xA9");

  Result<Json> Pair = Json::parse("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(Pair.ok()) << Pair.error();
  EXPECT_EQ(Pair.value().asString(), "\xF0\x9F\x98\x80");

  // A decoded escape must survive a quote/parse round-trip as raw UTF-8.
  Result<Json> Again = Json::parse(Json::quote(Pair.value().asString()));
  ASSERT_TRUE(Again.ok()) << Again.error();
  EXPECT_EQ(Again.value().asString(), "\xF0\x9F\x98\x80");

  EXPECT_FALSE(Json::parse("\"\\ud83d\"").ok()) << "lone high surrogate";
  EXPECT_FALSE(Json::parse("\"\\ude00\"").ok()) << "lone low surrogate";
  EXPECT_FALSE(Json::parse("\"\\ud83d\\u0041\"").ok())
      << "high surrogate without a low one";
  EXPECT_FALSE(Json::parse("\"\\u12g4\"").ok()) << "bad hex digit";
}

TEST_F(Obs, JsonPassesInvalidUtf8BytesThrough) {
  // The writer is byte-transparent above 0x1F: invalid UTF-8 (overlong,
  // truncated, stray continuation) must round-trip byte-exact rather than
  // be replaced or rejected, so remark text can carry arbitrary bytes.
  const std::string Sequences[] = {
      std::string("\x80"),         // stray continuation byte
      std::string("\xC3"),         // truncated two-byte sequence
      std::string("\xC0\xAF"),     // overlong encoding
      std::string("\xFF\xFE"),     // bytes never valid in UTF-8
      std::string("ok \xF0\x9F\x98\x80 then bad \xED\xA0\x80 end"),
  };
  for (const std::string &S : Sequences) {
    Result<Json> Back = Json::parse(Json::quote(S));
    ASSERT_TRUE(Back.ok()) << Back.error();
    EXPECT_EQ(Back.value().asString(), S);
  }
}

TEST_F(Obs, JsonParserRejectsGarbage) {
  EXPECT_FALSE(Json::parse("").ok());
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
  EXPECT_FALSE(Json::parse("01").ok());
  EXPECT_FALSE(Json::parse("{} trailing").ok());
  EXPECT_TRUE(Json::parse("  {\"a\": [1, 2.5, null]}  ").ok());
}

// Everything below exercises live telemetry; under a global
// RETICLE_NO_TELEMETRY build the API is inline no-ops and these
// expectations do not apply (obs_noop_test covers that configuration).
#ifndef RETICLE_NO_TELEMETRY

TEST_F(Obs, CounterAccumulates) {
  obs::Counter &C = obs::counter("test.counter");
  EXPECT_EQ(C.load(), 0u);
  ++C;
  C++;
  C += 40;
  EXPECT_EQ(C.load(), 42u);
  // Lookup by the same name returns the same counter.
  EXPECT_EQ(&obs::counter("test.counter"), &C);
  EXPECT_EQ(obs::counter("test.counter").load(), 42u);
  obs::gauge("test.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(obs::gauge("test.gauge").load(), 2.5);
}

TEST_F(Obs, CounterIsThreadSafe) {
  obs::Counter &C = obs::counter("test.mt");
  constexpr unsigned Threads = 4, PerThread = 10000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&C] {
      for (unsigned I = 0; I < PerThread; ++I)
        ++C;
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.load(), uint64_t(Threads) * PerThread);
}

TEST_F(Obs, CountersJsonSnapshot) {
  obs::counter("test.a") += 3;
  obs::gauge("test.b").set(1.5);
  Json Snapshot = obs::countersJson();
  const Json *Counters = Snapshot.find("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_NE(Counters->find("test.a"), nullptr);
  EXPECT_EQ(Counters->find("test.a")->asInt(), 3);
  const Json *Gauges = Snapshot.find("gauges");
  ASSERT_NE(Gauges, nullptr);
  ASSERT_NE(Gauges->find("test.b"), nullptr);
  EXPECT_DOUBLE_EQ(Gauges->find("test.b")->asDouble(), 1.5);
}

TEST_F(Obs, SpansNestAndSerialize) {
  obs::enableTracing();
  {
    obs::Span Outer("outer");
    Outer.arg("n", uint64_t(7));
    Outer.arg("label", "x");
    {
      obs::Span Inner("inner");
      Inner.arg("ratio", 0.5);
    }
    obs::instant("tick");
  }
  Result<Json> Trace = Json::parse(obs::traceJson());
  ASSERT_TRUE(Trace.ok()) << Trace.error();

  const Json *Outer = event(Trace.value(), "outer");
  const Json *Inner = event(Trace.value(), "inner");
  const Json *Tick = event(Trace.value(), "tick");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  ASSERT_NE(Tick, nullptr);

  // The inner span lies strictly within the outer one — that containment
  // is what the trace viewer uses to reconstruct nesting.
  double OuterTs = numField(*Outer, "ts"), OuterDur = numField(*Outer, "dur");
  double InnerTs = numField(*Inner, "ts"), InnerDur = numField(*Inner, "dur");
  EXPECT_GE(InnerTs, OuterTs);
  EXPECT_LE(InnerTs + InnerDur, OuterTs + OuterDur + 1e-9);
  EXPECT_EQ(Outer->find("ph")->asString(), "X");
  EXPECT_EQ(Tick->find("ph")->asString(), "i");

  const Json *Args = Outer->find("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_EQ(Args->find("n")->asInt(), 7);
  EXPECT_EQ(Args->find("label")->asString(), "x");
}

TEST_F(Obs, SpansRecordNothingWhileDisabled) {
  {
    obs::Span Sp("invisible");
    obs::instant("also_invisible");
  }
  Result<Json> Trace = Json::parse(obs::traceJson());
  ASSERT_TRUE(Trace.ok()) << Trace.error();
  EXPECT_EQ(Trace.value().find("traceEvents")->size(), 0u);
}

TEST_F(Obs, WriteTraceProducesParsableFile) {
  obs::enableTracing();
  { obs::Span Sp("filed"); }
  std::string Path = ::testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(obs::writeTrace(Path).ok());
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Result<Json> Trace = Json::parse(Buffer.str());
  ASSERT_TRUE(Trace.ok()) << Trace.error();
  EXPECT_NE(event(Trace.value(), "filed"), nullptr);
  std::remove(Path.c_str());
}

TEST_F(Obs, HistogramPercentilesAreBucketUpperBounds) {
  obs::Telemetry T;
  obs::Histogram &H = T.histogram("t.ms");
  EXPECT_DOUBLE_EQ(H.percentile(50), 0.0) << "empty histogram";
  for (int I = 1; I <= 100; ++I)
    H.record(double(I));
  EXPECT_EQ(H.count(), 100u);
  EXPECT_DOUBLE_EQ(H.max(), 100.0);
  EXPECT_NEAR(H.sum(), 5050.0, 1e-9);
  // The rank-50 sample (50) lands in the [32,64) bucket, whose upper
  // bound is the reported percentile; p90/p99 clamp to the observed max.
  EXPECT_DOUBLE_EQ(H.percentile(50), 64.0);
  EXPECT_DOUBLE_EQ(H.percentile(90), 100.0);
  EXPECT_DOUBLE_EQ(H.percentile(99), 100.0);

  Json Doc = T.histogramsJson();
  const Json *E = Doc.find("t.ms");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->find("count")->asInt(), 100);
  EXPECT_DOUBLE_EQ(E->find("p50")->asDouble(), 64.0);
  EXPECT_DOUBLE_EQ(E->find("p99")->asDouble(), 100.0);
  EXPECT_DOUBLE_EQ(E->find("max")->asDouble(), 100.0);

  // Registered-but-empty histograms stay out of the export.
  T.histogram("t.unused");
  EXPECT_EQ(T.histogramsJson().find("t.unused"), nullptr);
}

TEST_F(Obs, FoldedStacksReconstructNesting) {
  obs::enableTracing();
  {
    obs::Span Outer("outer");
    {
      obs::Span Inner("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  std::string Folded = obs::defaultTelemetry().foldedStacks();
  EXPECT_NE(Folded.find("outer;inner "), std::string::npos) << Folded;
  EXPECT_NE(Folded.find("outer "), std::string::npos) << Folded;
  // Every line is `stack <integer self-microseconds>`.
  std::istringstream Lines(Folded);
  std::string Line;
  while (std::getline(Lines, Line)) {
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    EXPECT_NO_THROW((void)std::stoll(Line.substr(Space + 1))) << Line;
  }
}

#endif // RETICLE_NO_TELEMETRY

TEST_F(Obs, StatsDocumentIsWellFormed) {
  Result<ir::Function> Fn = ir::parseFunction(R"(
    def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )");
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  Result<core::CompileResult> R = core::compile(Fn.value(), Options);
  ASSERT_TRUE(R.ok()) << R.error();

  Json Doc = core::statsJson(R.value(), "mac.ret");
  // The document survives a serialize/parse round trip...
  Result<Json> Back = Json::parse(Doc.str(2));
  ASSERT_TRUE(Back.ok()) << Back.error();
  const Json &B = Back.value();
  // ...and carries every section of the schema.
  EXPECT_EQ(B.find("schema")->asString(), "reticle-stats-v1");
  EXPECT_EQ(B.find("program")->asString(), "mac.ret");
  ASSERT_NE(B.find("timings"), nullptr);
  EXPECT_GT(B.find("timings")->find("total_ms")->asDouble(), 0.0);
  ASSERT_NE(B.find("place"), nullptr);
  const Json *Sat = B.find("place")->find("sat");
  ASSERT_NE(Sat, nullptr);
  EXPECT_GT(Sat->find("decisions")->asInt(), 0);
  EXPECT_GT(Sat->find("propagations")->asInt(), 0);
  EXPECT_EQ(B.find("utilization")->find("dsps")->asInt(), 1);
  EXPECT_GT(B.find("timing")->find("fmax_mhz")->asDouble(), 0.0);
#ifndef RETICLE_NO_TELEMETRY
  // Telemetry is compiled in for this test binary, so the counter
  // registry rides along and reflects the compile that just ran.
  const Json *Counters = B.find("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_NE(Counters->find("core.compiles"), nullptr);
  EXPECT_GE(Counters->find("core.compiles")->asInt(), 1);
  EXPECT_GE(Counters->find("sat.solves")->asInt(), 1);
#else
  // The compiled-out build omits the registry sections entirely.
  EXPECT_EQ(B.find("counters"), nullptr);
#endif
}

#ifndef RETICLE_NO_TELEMETRY
TEST_F(Obs, CompilePipelineEmitsNestedStageSpans) {
  Result<ir::Function> Fn = ir::parseFunction(R"(
    def add1(a:i8, b:i8) -> (y:i8) {
      y:i8 = add(a, b) @??;
    }
  )");
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  obs::enableTracing();
  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  ASSERT_TRUE(core::compile(Fn.value(), Options).ok());

  Result<Json> Trace = Json::parse(obs::traceJson());
  ASSERT_TRUE(Trace.ok()) << Trace.error();
  const Json *Compile = event(Trace.value(), "compile");
  ASSERT_NE(Compile, nullptr);
  double T0 = numField(*Compile, "ts");
  double T1 = T0 + numField(*Compile, "dur");
  for (const char *Stage : {"select", "cascade", "place", "codegen",
                            "timing", "sat.solve", "place.solve"}) {
    const Json *E = event(Trace.value(), Stage);
    ASSERT_NE(E, nullptr) << "no span " << Stage;
    EXPECT_GE(numField(*E, "ts"), T0) << Stage;
    EXPECT_LE(numField(*E, "ts") + numField(*E, "dur"), T1 + 1e-9) << Stage;
  }
}
#endif // RETICLE_NO_TELEMETRY

TEST_F(Obs, PrintTableRendersEverySection) {
  Json Doc = Json::object();
  Doc.set("schema", "reticle-stats-v1");
  Json Sub = Json::object();
  Sub.set("x", 1);
  Json Nested = Json::object();
  Nested.set("deep", 2);
  Sub.set("sat", std::move(Nested));
  Doc.set("place", std::move(Sub));

  char Buffer[4096] = {};
  FILE *Stream = fmemopen(Buffer, sizeof(Buffer) - 1, "w");
  ASSERT_NE(Stream, nullptr);
  obs::printTable(Doc, Stream);
  std::fclose(Stream);
  std::string Out(Buffer);
  EXPECT_NE(Out.find("reticle-stats-v1"), std::string::npos);
  EXPECT_NE(Out.find("[place]"), std::string::npos);
  EXPECT_NE(Out.find("sat.deep"), std::string::npos);
}
