//===- tests/type_test.cpp - Type system unit tests --------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include <gtest/gtest.h>

using namespace reticle;
using ir::Type;

TEST(Type, BoolProperties) {
  Type T = Type::makeBool();
  EXPECT_TRUE(T.isBool());
  EXPECT_FALSE(T.isInt());
  EXPECT_FALSE(T.isVector());
  EXPECT_EQ(T.width(), 1u);
  EXPECT_EQ(T.lanes(), 1u);
  EXPECT_EQ(T.totalBits(), 1u);
  EXPECT_EQ(T.str(), "bool");
}

TEST(Type, ScalarInt) {
  Type T = Type::makeInt(8);
  EXPECT_TRUE(T.isInt());
  EXPECT_FALSE(T.isVector());
  EXPECT_EQ(T.width(), 8u);
  EXPECT_EQ(T.totalBits(), 8u);
  EXPECT_EQ(T.str(), "i8");
}

TEST(Type, VectorInt) {
  Type T = Type::makeInt(8, 4);
  EXPECT_TRUE(T.isVector());
  EXPECT_EQ(T.lanes(), 4u);
  EXPECT_EQ(T.totalBits(), 32u);
  EXPECT_EQ(T.str(), "i8<4>");
  EXPECT_EQ(T.scalar(), Type::makeInt(8));
}

TEST(Type, ParseRoundTrip) {
  for (const char *Text : {"bool", "i1", "i8", "i16", "i64", "i8<4>",
                           "i32<16>"}) {
    Result<Type> T = Type::parse(Text);
    ASSERT_TRUE(T.ok()) << Text << ": " << T.error();
    EXPECT_EQ(T.value().str(), Text);
  }
}

TEST(Type, ParseRejectsMalformed) {
  for (const char *Text : {"", "u8", "i0", "i65", "i8<", "i8<0>", "i8<x>",
                           "bool<4>", "int"}) {
    EXPECT_FALSE(Type::parse(Text).ok()) << Text;
  }
}

TEST(Type, Equality) {
  EXPECT_EQ(Type::makeInt(8), Type::makeInt(8));
  EXPECT_NE(Type::makeInt(8), Type::makeInt(16));
  EXPECT_NE(Type::makeInt(8), Type::makeInt(8, 2));
  EXPECT_NE(Type::makeBool(), Type::makeInt(1));
}
