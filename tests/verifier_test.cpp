//===- tests/verifier_test.cpp - Well-formedness tests -----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::ir;

namespace {

Function parseOk(const char *Source) {
  Result<Function> Fn = parseFunction(Source);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  return Fn.take();
}

} // namespace

TEST(Verifier, AcceptsPaperFigure12b) {
  // The well-formed counter of Figure 12b: the cycle passes through reg.
  Function Fn = parseOk(R"(
    def wf() -> (t3:i8) {
      t0:bool = const[1];
      t1:i8 = const[4];
      t2:i8 = add(t3, t1) @??;
      t3:i8 = reg[0](t2, t0) @??;
    }
  )");
  Status S = verify(Fn);
  EXPECT_TRUE(S.ok()) << S.error();
}

TEST(Verifier, RejectsPaperFigure12a) {
  // The ill-formed increment of Figure 12a: a combinational self-loop.
  Function Fn = parseOk(R"(
    def illf() -> (t1:i8) {
      t0:i8 = const[4];
      t1:i8 = add(t1, t0) @??;
    }
  )");
  Status S = verify(Fn);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().find("combinational cycle"), std::string::npos);
}

TEST(Verifier, RejectsLongerCombinationalCycle) {
  Function Fn = parseOk(R"(
    def loop(a:i8) -> (y:i8) {
      t0:i8 = add(a, y) @??;
      t1:i8 = mul(t0, a) @??;
      y:i8 = add(t1, a) @??;
    }
  )");
  EXPECT_FALSE(verify(Fn).ok());
}

TEST(Verifier, RejectsUndefinedVariable) {
  Function Fn = parseOk("def f(a:i8) -> (y:i8) { y:i8 = add(a, ghost) @??; }");
  Status S = verify(Fn);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().find("undefined variable"), std::string::npos);
}

TEST(Verifier, RejectsDuplicateDefinition) {
  Function Fn = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      y:i8 = id(a);
      y:i8 = add(a, a) @??;
    }
  )");
  Status S = verify(Fn);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().find("multiple definitions"), std::string::npos);
}

TEST(Verifier, RejectsShadowedInput) {
  Function Fn = parseOk("def f(a:i8) -> (a:i8) { a:i8 = const[1]; }");
  EXPECT_FALSE(verify(Fn).ok());
}

TEST(Verifier, RejectsUndefinedOutput) {
  Function Fn = parseOk("def f(a:i8) -> (y:i8) { t0:i8 = id(a); }");
  Status S = verify(Fn);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().find("never defined"), std::string::npos);
}

TEST(Verifier, RejectsOutputTypeMismatch) {
  Function Fn = parseOk("def f(a:i8) -> (y:i16) { y:i8 = id(a); }");
  EXPECT_FALSE(verify(Fn).ok());
}

TEST(Verifier, OutputMayBeAnInput) {
  Function Fn = parseOk(R"(
    def f(a:i8) -> (a:i8, y:i8) {
      y:i8 = id(a);
    }
  )");
  Status S = verify(Fn);
  EXPECT_TRUE(S.ok()) << S.error();
}

TEST(Verifier, TypeChecksArithmetic) {
  Function Fn = parseOk(R"(
    def f(a:i8, b:i16) -> (y:i8) {
      y:i8 = add(a, b) @??;
    }
  )");
  Status S = verify(Fn);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().find("argument type"), std::string::npos);
}

TEST(Verifier, RejectsArithmeticOnBool) {
  Function Fn = parseOk(R"(
    def f(a:bool, b:bool) -> (y:bool) {
      y:bool = add(a, b) @??;
    }
  )");
  EXPECT_FALSE(verify(Fn).ok());
}

TEST(Verifier, AllowsBitwiseOnBool) {
  Function Fn = parseOk(R"(
    def bit_and(a:bool, b:bool) -> (y:bool) {
      y:bool = and(a, b) @??;
    }
  )");
  Status S = verify(Fn);
  EXPECT_TRUE(S.ok()) << S.error();
}

TEST(Verifier, ComparisonRequiresBoolResult) {
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8) -> (y:i8) {
      y:i8 = lt(a, b) @??;
    }
  )");
  EXPECT_FALSE(verify(Fn).ok());
}

TEST(Verifier, MuxConditionMustBeBool) {
  Function Fn = parseOk(R"(
    def f(c:i8, a:i8, b:i8) -> (y:i8) {
      y:i8 = mux(c, a, b) @??;
    }
  )");
  EXPECT_FALSE(verify(Fn).ok());
}

TEST(Verifier, RegEnableMustBeBool) {
  Function Fn = parseOk(R"(
    def f(a:i8, en:i8) -> (y:i8) {
      y:i8 = reg[0](a, en) @??;
    }
  )");
  EXPECT_FALSE(verify(Fn).ok());
}

TEST(Verifier, ShiftAmountRange) {
  Function Fn = parseOk("def f(a:i8) -> (y:i8) { y:i8 = sll[8](a); }");
  EXPECT_FALSE(verify(Fn).ok());
}

TEST(Verifier, SliceBounds) {
  Function Fn = parseOk("def f(a:i16) -> (y:i8) { y:i8 = slice[9](a); }");
  EXPECT_FALSE(verify(Fn).ok());
  Function Ok = parseOk("def f(a:i16) -> (y:i8) { y:i8 = slice[8](a); }");
  EXPECT_TRUE(verify(Ok).ok());
}

TEST(Verifier, CatBitWidths) {
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8) -> (y:i8) {
      y:i8 = cat(a, b);
    }
  )");
  EXPECT_FALSE(verify(Fn).ok());
  Function Ok = parseOk(R"(
    def f(a:i8, b:i8) -> (y:i8<2>) {
      y:i8<2> = cat(a, b);
    }
  )");
  EXPECT_TRUE(verify(Ok).ok());
}

TEST(Verifier, VectorConstLaneCount) {
  Function Bad = parseOk("def f() -> (y:i8<4>) { y:i8<4> = const[1, 2]; }");
  EXPECT_FALSE(verify(Bad).ok());
  Function Splat = parseOk("def f() -> (y:i8<4>) { y:i8<4> = const[7]; }");
  EXPECT_TRUE(verify(Splat).ok());
  Function Full =
      parseOk("def f() -> (y:i8<4>) { y:i8<4> = const[1, 2, 3, 4]; }");
  EXPECT_TRUE(verify(Full).ok());
}

TEST(Verifier, TopoOrderRespectsDependencies) {
  Function Fn = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      y:i8 = add(t0, t1) @??;
      t1:i8 = mul(t0, a) @??;
      t0:i8 = id(a);
    }
  )");
  Result<std::vector<size_t>> Order = topoOrder(Fn);
  ASSERT_TRUE(Order.ok()) << Order.error();
  // t0 (index 2) must precede t1 (index 1), which must precede y (index 0).
  std::vector<size_t> Position(3);
  for (size_t I = 0; I < Order.value().size(); ++I)
    Position[Order.value()[I]] = I;
  EXPECT_LT(Position[2], Position[1]);
  EXPECT_LT(Position[1], Position[0]);
}
