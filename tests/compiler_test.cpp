//===- tests/compiler_test.cpp - End-to-end compiler tests ---------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "interp/Interp.h"
#include "ir/Parser.h"
#include "rasm/ToIr.h"
#include "tdl/Ultrascale.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::core;
using device::Device;

namespace {

ir::Function parseOk(const char *Source) {
  Result<ir::Function> Fn = ir::parseFunction(Source);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  return Fn.take();
}

} // namespace

TEST(Compiler, MulAddPipelineEndToEnd) {
  ir::Function Fn = parseOk(R"(
    def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )");
  CompileOptions Options;
  Options.Dev = Device::small();
  Result<CompileResult> R = compile(Fn, Options);
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().Util.Dsps, 1u);
  EXPECT_EQ(R.value().Util.Luts, 0u);
  EXPECT_TRUE(R.value().Placed.isPlaced());
  EXPECT_GT(R.value().Timing.FmaxMhz, 0.0);
  EXPECT_GT(R.value().Times.TotalMs, 0.0);
  EXPECT_TRUE(place::checkPlacement(R.value().Asm, R.value().Placed,
                                    Options.Dev)
                  .ok());
}

TEST(Compiler, DotProductChainsCascade) {
  ir::Function Fn = parseOk(R"(
    def dot(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, in:i8) -> (t2:i8) {
      m0:i8 = mul(a0, b0) @??;
      t0:i8 = add(m0, in) @??;
      m1:i8 = mul(a1, b1) @??;
      t1:i8 = add(m1, t0) @??;
      m2:i8 = mul(a2, b2) @??;
      t2:i8 = add(m2, t1) @??;
    }
  )");
  CompileOptions Options;
  Options.Dev = Device::small();
  Result<CompileResult> R = compile(Fn, Options);
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().CascadeStats.Chains, 1u);
  EXPECT_EQ(R.value().Util.Dsps, 3u);
  // Cascaded chain occupies one column, consecutive rows.
  std::vector<std::pair<int64_t, int64_t>> Slots;
  for (const rasm::AsmInstr &I : R.value().Placed.body())
    if (!I.isWire())
      Slots.push_back({I.loc().X.offset(), I.loc().Y.offset()});
  ASSERT_EQ(Slots.size(), 3u);
  EXPECT_EQ(Slots[0].first, Slots[1].first);
  EXPECT_EQ(Slots[1].first, Slots[2].first);

  CompileOptions NoCascade = Options;
  NoCascade.Cascade = false;
  Result<CompileResult> R2 = compile(Fn, NoCascade);
  ASSERT_TRUE(R2.ok()) << R2.error();
  EXPECT_EQ(R2.value().CascadeStats.Chains, 0u);
  // Cascading must not be slower than general routing.
  EXPECT_LE(R.value().Timing.CriticalPathNs,
            R2.value().Timing.CriticalPathNs);
}

TEST(Compiler, CompiledSemanticsMatchSource) {
  ir::Function Fn = parseOk(R"(
    def pipe(a:i8, b:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, a) @??;
      c0:bool = lt(t1, b) @??;
      t2:i8 = mux(c0, t0, t1) @??;
      y:i8 = reg[3](t2, en) @??;
    }
  )");
  CompileOptions Options;
  Options.Dev = Device::small();
  Result<CompileResult> R = compile(Fn, Options);
  ASSERT_TRUE(R.ok()) << R.error();

  Result<ir::Function> Lowered =
      rasm::toIr(R.value().Placed, tdl::ultrascale());
  ASSERT_TRUE(Lowered.ok()) << Lowered.error();

  interp::Trace Input;
  for (int C = 0; C < 4; ++C) {
    interp::Step &S = Input.appendStep();
    S["a"] = interp::Value::splat(ir::Type::makeInt(8), 3 + C);
    S["b"] = interp::Value::splat(ir::Type::makeInt(8), 5 - C);
    S["en"] = interp::Value::makeBool(C % 2 == 0);
  }
  Result<interp::Trace> Expected = interp::interpret(Fn, Input);
  Result<interp::Trace> Got = interp::interpret(Lowered.value(), Input);
  ASSERT_TRUE(Expected.ok()) << Expected.error();
  ASSERT_TRUE(Got.ok()) << Got.error();
  for (size_t C = 0; C < 4; ++C)
    EXPECT_EQ(*Expected.value().get(C, "y"), *Got.value().get(C, "y"));
}

TEST(Compiler, FailsCleanlyOnOversubscription) {
  // 5 forced-DSP ops on a 4-DSP device.
  std::string Source = "def f(a:i8, b:i8) -> (t0:i8) {\n";
  for (int I = 0; I < 5; ++I)
    Source += "  t" + std::to_string(I) + ":i8 = add(a, b) @dsp;\n";
  Source += "}\n";
  ir::Function Fn = parseOk(Source.c_str());
  CompileOptions Options;
  Options.Dev = Device::tiny();
  Result<CompileResult> R = compile(Fn, Options);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("placement failed"), std::string::npos);
}

TEST(Compiler, StatsAccounting) {
  ir::Function Fn = parseOk(R"(
    def f(a:i8<4>, b:i8<4>, en:bool) -> (y:i8<4>) {
      t0:i8<4> = add(a, b) @dsp;
      y:i8<4> = reg[0](t0, en) @??;
    }
  )");
  CompileOptions Options;
  Options.Dev = Device::small();
  Result<CompileResult> R = compile(Fn, Options);
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().SelectStats.NumAsmOps, 1u); // fused addreg
  EXPECT_GT(R.value().PlaceStats.Solves, 0u);
  EXPECT_GE(R.value().Times.TotalMs,
            R.value().Times.SelectMs); // total includes stages
}
