module mac(
  input clock,
  input [7:0] a,
  input [7:0] b,
  input [7:0] c,
  input en,
  output [7:0] y
);
  wire [47:0] y__w0;
  wire [29:0] y__w1;
  assign y__w1 = {{22{a[7]}}, a};
  wire [17:0] y__w2;
  assign y__w2 = {{10{b[7]}}, b};
  wire [47:0] y__w3;
  assign y__w3 = {{40{c[7]}}, c};
  (* LOC = "DSP48E2_X2Y0" *)
  DSP48E2 # (.USE_SIMD("ONE48"), .USE_MULT("MULTIPLY"), .ALUMODE(4'h0), .OPMODE(9'h35), .PREG(1'h1), .AREG(2'h0), .BREG(2'h0), .CREG(1'h0), .MREG(1'h0))
    i0 (.A(y__w1), .B(y__w2), .C(y__w3), .P(y__w0), .CLK(clock), .CEP(en));
  assign y = y__w0[7:0];
endmodule
