//===- tests/frontend_test.cpp - Benchmark generator tests ---------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Benchmarks.h"

#include "core/Compiler.h"
#include "interp/Interp.h"
#include "ir/Verifier.h"
#include "synth/Synth.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::frontend;
using device::Device;

TEST(Frontend, GeneratedProgramsAreWellFormed) {
  for (unsigned N : {8u, 64u})
    EXPECT_TRUE(ir::verify(makeTensorAdd(N)).ok()) << N;
  for (unsigned K : {3u, 9u})
    EXPECT_TRUE(ir::verify(makeTensorDot(K)).ok()) << K;
  for (unsigned S : {3u, 5u, 9u})
    EXPECT_TRUE(ir::verify(makeFsm(S)).ok()) << S;
  for (unsigned N : {8u, 32u})
    EXPECT_TRUE(ir::verify(makeDspAdd(N)).ok()) << N;
}

TEST(Frontend, TensorAddComputesElementwiseSum) {
  ir::Function Fn = makeTensorAdd(8);
  interp::Trace Input;
  ir::Type V = ir::Type::makeInt(8, 4);
  for (int C = 0; C < 2; ++C) {
    interp::Step &S = Input.appendStep();
    S["en"] = interp::Value::makeBool(true);
    S["a0"] = interp::Value::fromLanes(V, {1, 2, 3, 4});
    S["b0"] = interp::Value::fromLanes(V, {10, 20, 30, 40});
    S["a1"] = interp::Value::fromLanes(V, {5, 6, 7, 8});
    S["b1"] = interp::Value::fromLanes(V, {50, 60, 70, 80});
  }
  Result<interp::Trace> Out = interp::interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  // Registered outputs appear one cycle later.
  const interp::Value *Y0 = Out.value().get(1, "y0");
  ASSERT_NE(Y0, nullptr);
  EXPECT_EQ(Y0->lane(0), 11);
  EXPECT_EQ(Y0->lane(3), 44);
  const interp::Value *Y1 = Out.value().get(1, "y1");
  EXPECT_EQ(Y1->lane(2), 77);
}

TEST(Frontend, TensorDotComputesPipelinedDot) {
  // One row, K=3: after K cycles of constant inputs the accumulator holds
  // the full dot product.
  ir::Function Fn = makeTensorDot(3, /*Rows=*/1);
  interp::Trace Input;
  ir::Type I8 = ir::Type::makeInt(8);
  for (int C = 0; C < 4; ++C) {
    interp::Step &S = Input.appendStep();
    S["en"] = interp::Value::makeBool(true);
    for (int K = 0; K < 3; ++K) {
      S["a0_" + std::to_string(K)] = interp::Value::splat(I8, K + 1);
      S["b0_" + std::to_string(K)] = interp::Value::splat(I8, 2);
    }
  }
  Result<interp::Trace> Out = interp::interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  // Stage s captures sum of products up to s, delayed s+1 cycles; the
  // final output p0_2 reaches 2*(1+2+3)=12 at cycle 3.
  EXPECT_EQ(Out.value().get(3, "p0_2")->scalar(), 12);
}

TEST(Frontend, FsmAdvancesAndWraps) {
  ir::Function Fn = makeFsm(3);
  interp::Trace Input;
  ir::Type I8 = ir::Type::makeInt(8);
  for (int C = 0; C < 5; ++C) {
    interp::Step &S = Input.appendStep();
    S["en"] = interp::Value::makeBool(true);
    S["in"] = interp::Value::splat(I8, 100); // clears every threshold
  }
  Result<interp::Trace> Out = interp::interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_EQ(Out.value().get(0, "state")->scalar(), 0);
  EXPECT_EQ(Out.value().get(1, "state")->scalar(), 1);
  EXPECT_EQ(Out.value().get(2, "state")->scalar(), 2);
  EXPECT_EQ(Out.value().get(3, "state")->scalar(), 0); // wraps
}

TEST(Frontend, FsmHoldsBelowThreshold) {
  ir::Function Fn = makeFsm(3);
  interp::Trace Input;
  ir::Type I8 = ir::Type::makeInt(8);
  for (int C = 0; C < 3; ++C) {
    interp::Step &S = Input.appendStep();
    S["en"] = interp::Value::makeBool(true);
    S["in"] = interp::Value::splat(I8, 0); // below every threshold
  }
  Result<interp::Trace> Out = interp::interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  for (int C = 0; C < 3; ++C)
    EXPECT_EQ(Out.value().get(C, "state")->scalar(), 0);
}

TEST(Frontend, TensorAddCompilesToSimdDsps) {
  core::CompileOptions Options;
  Options.Dev = Device::small();
  Result<core::CompileResult> R = core::compile(makeTensorAdd(16), Options);
  ASSERT_TRUE(R.ok()) << R.error();
  // 16 elements = 4 SIMD groups, each one fused addreg DSP.
  EXPECT_EQ(R.value().Util.Dsps, 4u);
  EXPECT_EQ(R.value().Util.Luts, 0u);
}

TEST(Frontend, TensorDotCompilesToCascadedChains) {
  core::CompileOptions Options;
  Options.Dev = Device::small();
  Result<core::CompileResult> R =
      core::compile(makeTensorDot(3, 2), Options);
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().Util.Dsps, 6u);
  EXPECT_EQ(R.value().CascadeStats.Chains, 2u);
}

TEST(Frontend, FsmCompilesToLutsOnly) {
  core::CompileOptions Options;
  Options.Dev = Device::small();
  Result<core::CompileResult> R = core::compile(makeFsm(5), Options);
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().Util.Dsps, 0u);
  EXPECT_GT(R.value().Util.Luts, 0u);
}

TEST(Frontend, DspAddBaselineReproducesFigure4Cliff) {
  // 24 lanes on a 16-DSP device: behavioral hint saturates DSPs and
  // spills to LUTs; the Reticle path packs 4 lanes per DSP and needs 6.
  ir::Function Fn = makeDspAdd(24);
  synth::SynthOptions SOpts;
  SOpts.SynthMode = synth::Mode::Hint;
  SOpts.Dev = Device::small();
  SOpts.Anneal.MovesPerCell = 8;
  SOpts.Anneal.MinMovesPerTemp = 0;
  Result<synth::SynthResult> Hint = synth::synthesize(Fn, SOpts);
  ASSERT_TRUE(Hint.ok()) << Hint.error();
  EXPECT_EQ(Hint.value().Dsps, 16u);
  EXPECT_GT(Hint.value().Luts, 0u);

  core::CompileOptions COpts;
  COpts.Dev = Device::small();
  Result<core::CompileResult> Ret = core::compile(Fn, COpts);
  ASSERT_TRUE(Ret.ok()) << Ret.error();
  EXPECT_EQ(Ret.value().Util.Dsps, 6u);
  EXPECT_EQ(Ret.value().Util.Luts, 0u);
}
