//===- tests/interp_props_test.cpp - Interpreter algebraic properties ----------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Property tests over the evaluation semantics: algebraic identities
/// that must hold for every operand value, checked across random values
/// and widths. These pin down the two's-complement, signed,
/// lane-wise semantics the rest of the system (selection, baselines,
/// code generation) is validated against.
///
//===----------------------------------------------------------------------===//

#include "interp/Eval.h"

#include <gtest/gtest.h>

#include <random>

using namespace reticle;
using interp::Value;
using ir::CompOp;
using ir::Instr;
using ir::Type;

namespace {

Value evalBin(CompOp Op, Type Ty, const Value &A, const Value &B) {
  Instr I = Instr::makeComp("y", Op == CompOp::Eq || Op == CompOp::Lt
                                     ? Type::makeBool()
                                     : Ty,
                            Op, {"a", "b"});
  Result<Value> R = interp::evalPure(I, {A, B});
  EXPECT_TRUE(R.ok()) << R.error();
  return R.take();
}

} // namespace

class InterpProps : public ::testing::TestWithParam<unsigned> {
protected:
  void SetUp() override {
    Rng.seed(GetParam() * 31 + 7);
    Widths = {1, 4, 8, 16, 32, 64};
  }
  Value randomValue(Type Ty) {
    std::uniform_int_distribution<int64_t> D(INT64_MIN, INT64_MAX);
    std::vector<int64_t> Lanes;
    for (unsigned L = 0; L < Ty.lanes(); ++L)
      Lanes.push_back(D(Rng));
    return Value::fromLanes(Ty, std::move(Lanes));
  }
  std::mt19937_64 Rng;
  std::vector<unsigned> Widths;
};

TEST_P(InterpProps, AddCommutesAndAssociates) {
  for (unsigned W : Widths) {
    Type Ty = Type::makeInt(W, 2);
    Value A = randomValue(Ty), B = randomValue(Ty), C = randomValue(Ty);
    EXPECT_EQ(evalBin(CompOp::Add, Ty, A, B),
              evalBin(CompOp::Add, Ty, B, A));
    EXPECT_EQ(
        evalBin(CompOp::Add, Ty, evalBin(CompOp::Add, Ty, A, B), C),
        evalBin(CompOp::Add, Ty, A, evalBin(CompOp::Add, Ty, B, C)));
  }
}

TEST_P(InterpProps, SubIsAddOfNegation) {
  for (unsigned W : Widths) {
    Type Ty = Type::makeInt(W);
    Value A = randomValue(Ty), B = randomValue(Ty);
    Value Zero = Value::splat(Ty, 0);
    Value NegB = evalBin(CompOp::Sub, Ty, Zero, B);
    EXPECT_EQ(evalBin(CompOp::Sub, Ty, A, B),
              evalBin(CompOp::Add, Ty, A, NegB));
  }
}

TEST_P(InterpProps, MulDistributesOverAdd) {
  for (unsigned W : Widths) {
    Type Ty = Type::makeInt(W, 4);
    Value A = randomValue(Ty), B = randomValue(Ty), C = randomValue(Ty);
    Value Left =
        evalBin(CompOp::Mul, Ty, A, evalBin(CompOp::Add, Ty, B, C));
    Value Right = evalBin(CompOp::Add, Ty, evalBin(CompOp::Mul, Ty, A, B),
                          evalBin(CompOp::Mul, Ty, A, C));
    EXPECT_EQ(Left, Right) << "width " << W;
  }
}

TEST_P(InterpProps, DeMorgan) {
  for (unsigned W : Widths) {
    Type Ty = Type::makeInt(W);
    Value A = randomValue(Ty), B = randomValue(Ty);
    Instr Not = Instr::makeComp("y", Ty, CompOp::Not, {"a"});
    auto Negate = [&](const Value &V) {
      Result<Value> R = interp::evalPure(Not, {V});
      EXPECT_TRUE(R.ok());
      return R.take();
    };
    EXPECT_EQ(Negate(evalBin(CompOp::And, Ty, A, B)),
              evalBin(CompOp::Or, Ty, Negate(A), Negate(B)));
  }
}

TEST_P(InterpProps, ComparisonTrichotomy) {
  for (unsigned W : Widths) {
    Type Ty = Type::makeInt(W);
    Value A = randomValue(Ty), B = randomValue(Ty);
    bool Lt = evalBin(CompOp::Lt, Ty, A, B).toBool();
    bool Eq = evalBin(CompOp::Eq, Ty, A, B).toBool();
    bool Gt = evalBin(CompOp::Lt, Ty, B, A).toBool();
    EXPECT_EQ(int(Lt) + int(Eq) + int(Gt), 1) << "width " << W;
  }
}

TEST_P(InterpProps, ShiftsComposeWithSlices) {
  // sll[k] then srl[k] clears the top k bits and restores the rest.
  for (unsigned W : {8u, 16u, 32u}) {
    Type Ty = Type::makeInt(W);
    Value A = randomValue(Ty);
    unsigned K = GetParam() % (W - 1) + 1;
    Instr Sll = Instr::makeWire("t", Ty, ir::WireOp::Sll, {int64_t(K)},
                                {"a"});
    Instr Srl = Instr::makeWire("y", Ty, ir::WireOp::Srl, {int64_t(K)},
                                {"t"});
    Value Shifted = interp::evalPure(Sll, {A}).take();
    Value Restored = interp::evalPure(Srl, {Shifted}).take();
    // Equivalent to masking off the top K bits.
    uint64_t Mask =
        W - K == 64 ? ~uint64_t(0) : ((uint64_t(1) << (W - K)) - 1);
    Value Expected = Value::fromLanes(
        Ty, {static_cast<int64_t>(static_cast<uint64_t>(A.scalar()) &
                                  Mask)});
    EXPECT_EQ(Restored, Expected) << "width " << W << " shift " << K;
  }
}

TEST_P(InterpProps, CatSliceRoundTrip) {
  for (unsigned W : {4u, 8u, 24u}) {
    Type Ty = Type::makeInt(W);
    Type Pair = Type::makeInt(W, 2);
    Value A = randomValue(Ty), B = randomValue(Ty);
    Instr Cat = Instr::makeWire("p", Pair, ir::WireOp::Cat, {}, {"a", "b"});
    Value P = interp::evalPure(Cat, {A, B}).take();
    Instr Low = Instr::makeWire("l", Ty, ir::WireOp::Slice, {0}, {"p"});
    Instr High = Instr::makeWire("h", Ty, ir::WireOp::Slice,
                                 {int64_t(W)}, {"p"});
    EXPECT_EQ(interp::evalPure(Low, {P}).take(), A);
    EXPECT_EQ(interp::evalPure(High, {P}).take(), B);
  }
}

TEST_P(InterpProps, MuxSelectsExactly) {
  Type Ty = Type::makeInt(8, 4);
  Value A = randomValue(Ty), B = randomValue(Ty);
  Instr Mux = Instr::makeComp("y", Ty, CompOp::Mux, {"c", "a", "b"});
  EXPECT_EQ(interp::evalPure(Mux, {Value::makeBool(true), A, B}).take(), A);
  EXPECT_EQ(interp::evalPure(Mux, {Value::makeBool(false), A, B}).take(),
            B);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpProps, ::testing::Range(0u, 20u));
