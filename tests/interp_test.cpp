//===- tests/interp_test.cpp - Interpreter tests ------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "interp/Eval.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::interp;
using ir::Function;
using ir::Type;

namespace {

Function parseOk(const char *Source) {
  Result<Function> Fn = ir::parseFunction(Source);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  return Fn.take();
}

Value i8(int64_t V) { return Value::splat(Type::makeInt(8), V); }

} // namespace

TEST(Interp, Figure6ComputesFiveTimesTwoPlusFive) {
  Function Fn = parseOk(R"(
    def fig6() -> (t2:i8) {
      t0:i8 = const[5];
      t1:i8 = sll[1](t0);
      t2:i8 = add(t0, t1) @??;
    }
  )");
  Trace Input;
  Input.appendStep();
  Result<Trace> Out = interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_EQ(Out.value().get(0, "t2")->scalar(), 15);
}

TEST(Interp, CombinationalAddPerCycle) {
  Function Fn = parseOk(R"(
    def adder(a:i8, b:i8) -> (y:i8) {
      y:i8 = add(a, b) @??;
    }
  )");
  Trace Input;
  for (int C = 0; C < 4; ++C) {
    Step &S = Input.appendStep();
    S["a"] = i8(C);
    S["b"] = i8(10 * C);
  }
  Result<Trace> Out = interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  for (int C = 0; C < 4; ++C)
    EXPECT_EQ(Out.value().get(C, "y")->scalar(), 11 * C);
}

TEST(Interp, RegisterHoldsUntilEnabled) {
  Function Fn = parseOk(R"(
    def hold(a:i8, en:bool) -> (y:i8) {
      y:i8 = reg[0](a, en) @??;
    }
  )");
  Trace Input;
  int64_t Data[] = {5, 6, 7, 8};
  bool Enable[] = {false, true, false, true};
  for (int C = 0; C < 4; ++C) {
    Step &S = Input.appendStep();
    S["a"] = i8(Data[C]);
    S["en"] = Value::makeBool(Enable[C]);
  }
  Result<Trace> Out = interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  // Registers expose pre-update state: init 0, then values captured on
  // enabled edges become visible one cycle later.
  EXPECT_EQ(Out.value().get(0, "y")->scalar(), 0);
  EXPECT_EQ(Out.value().get(1, "y")->scalar(), 0);
  EXPECT_EQ(Out.value().get(2, "y")->scalar(), 6);
  EXPECT_EQ(Out.value().get(3, "y")->scalar(), 6);
}

TEST(Interp, Figure12bCounterIncrementsByFour) {
  Function Fn = parseOk(R"(
    def counter() -> (t3:i8) {
      t0:bool = const[1];
      t1:i8 = const[4];
      t2:i8 = add(t3, t1) @??;
      t3:i8 = reg[0](t2, t0) @??;
    }
  )");
  Trace Input;
  for (int C = 0; C < 5; ++C)
    Input.appendStep();
  Result<Trace> Out = interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  for (int C = 0; C < 5; ++C)
    EXPECT_EQ(Out.value().get(C, "t3")->scalar(), 4 * C);
}

TEST(Interp, MuxSelects) {
  Function Fn = parseOk(R"(
    def sel(c:bool, a:i8, b:i8) -> (y:i8) {
      y:i8 = mux(c, a, b) @??;
    }
  )");
  Trace Input;
  Step &S0 = Input.appendStep();
  S0["c"] = Value::makeBool(true);
  S0["a"] = i8(1);
  S0["b"] = i8(2);
  Step &S1 = Input.appendStep();
  S1["c"] = Value::makeBool(false);
  S1["a"] = i8(1);
  S1["b"] = i8(2);
  Result<Trace> Out = interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_EQ(Out.value().get(0, "y")->scalar(), 1);
  EXPECT_EQ(Out.value().get(1, "y")->scalar(), 2);
}

TEST(Interp, VectorAddIsLaneWise) {
  Function Fn = parseOk(R"(
    def vadd(a:i8<4>, b:i8<4>) -> (y:i8<4>) {
      y:i8<4> = add(a, b) @dsp;
    }
  )");
  Trace Input;
  Step &S = Input.appendStep();
  S["a"] = Value::fromLanes(Type::makeInt(8, 4), {1, 2, 3, 100});
  S["b"] = Value::fromLanes(Type::makeInt(8, 4), {10, 20, 30, 100});
  Result<Trace> Out = interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  const Value *Y = Out.value().get(0, "y");
  EXPECT_EQ(Y->lane(0), 11);
  EXPECT_EQ(Y->lane(1), 22);
  EXPECT_EQ(Y->lane(2), 33);
  EXPECT_EQ(Y->lane(3), -56); // 200 wraps in i8
}

TEST(Interp, SignedComparisons) {
  Function Fn = parseOk(R"(
    def cmp(a:i8, b:i8) -> (lt:bool, ge:bool, eq:bool) {
      lt:bool = lt(a, b) @??;
      ge:bool = ge(a, b) @??;
      eq:bool = eq(a, b) @??;
    }
  )");
  Trace Input;
  Step &S = Input.appendStep();
  S["a"] = i8(-5);
  S["b"] = i8(3);
  Result<Trace> Out = interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_TRUE(Out.value().get(0, "lt")->toBool());
  EXPECT_FALSE(Out.value().get(0, "ge")->toBool());
  EXPECT_FALSE(Out.value().get(0, "eq")->toBool());
}

TEST(Interp, SliceAndCat) {
  Function Good = parseOk(R"(
    def sc(a:i8, b:i8) -> (hi:i8, pair:i8<2>) {
      pair:i8<2> = cat(a, b);
      hi:i8 = slice[8](pair);
    }
  )");
  Trace Input;
  Step &S = Input.appendStep();
  S["a"] = i8(0x12);
  S["b"] = i8(0x34);
  Result<Trace> Out = interpret(Good, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_EQ(Out.value().get(0, "hi")->scalar(), 0x34);
  EXPECT_EQ(Out.value().get(0, "pair")->lane(0), 0x12);
  EXPECT_EQ(Out.value().get(0, "pair")->lane(1), 0x34);
}

TEST(Interp, ShiftSemantics) {
  Function Fn = parseOk(R"(
    def sh(a:i8) -> (l:i8, rl:i8, ra:i8) {
      l:i8 = sll[1](a);
      rl:i8 = srl[1](a);
      ra:i8 = sra[1](a);
    }
  )");
  Trace Input;
  Step &S = Input.appendStep();
  S["a"] = i8(-128); // 0x80
  Result<Trace> Out = interpret(Fn, Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_EQ(Out.value().get(0, "l")->scalar(), 0);
  EXPECT_EQ(Out.value().get(0, "rl")->scalar(), 0x40);
  EXPECT_EQ(Out.value().get(0, "ra")->scalar(), -64);
}

TEST(Interp, RejectsMissingInput) {
  Function Fn = parseOk("def f(a:i8) -> (y:i8) { y:i8 = id(a); }");
  Trace Input;
  Input.appendStep(); // no value for "a"
  Result<Trace> Out = interpret(Fn, Input);
  ASSERT_FALSE(Out.ok());
  EXPECT_NE(Out.error().find("missing"), std::string::npos);
}

TEST(Interp, RejectsIllTypedInput) {
  Function Fn = parseOk("def f(a:i8) -> (y:i8) { y:i8 = id(a); }");
  Trace Input;
  Input.appendStep()["a"] = Value::splat(Type::makeInt(16), 1);
  EXPECT_FALSE(interpret(Fn, Input).ok());
}

TEST(Interp, RejectsIllFormedProgram) {
  Function Fn = parseOk(R"(
    def illf() -> (t1:i8) {
      t0:i8 = const[4];
      t1:i8 = add(t1, t0) @??;
    }
  )");
  Trace Input;
  Input.appendStep();
  EXPECT_FALSE(interpret(Fn, Input).ok());
}

TEST(EvalPure, RejectsRegister) {
  ir::Instr Reg = ir::Instr::makeComp("y", Type::makeInt(8), ir::CompOp::Reg,
                                      {"a", "en"}, {0});
  std::vector<Value> Args = {i8(1), Value::makeBool(true)};
  EXPECT_FALSE(evalPure(Reg, Args).ok());
}
