//===- tests/misc_test.cpp - Cross-cutting coverage tests ----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "place/Place.h"
#include "rasm/AsmParser.h"
#include "sat/Dimacs.h"
#include "tdl/TdlParser.h"
#include "tdl/Ultrascale.h"

#include <gtest/gtest.h>

using namespace reticle;
using device::Device;

TEST(StratixTarget, TextRoundTripsThroughPrinter) {
  const tdl::Target &T = tdl::stratix();
  Result<tdl::Target> Again = tdl::parseTarget("stratix2", T.str());
  ASSERT_TRUE(Again.ok()) << Again.error();
  EXPECT_EQ(Again.value().defs().size(), T.defs().size());
}

TEST(StratixTarget, SmallerThanUltrascale) {
  // No SIMD DSP configurations means strictly fewer definitions.
  EXPECT_LT(tdl::stratix().defs().size(), tdl::ultrascale().defs().size());
}

TEST(Sat, SolverCanBeReusedAfterSat) {
  sat::Solver S;
  sat::Var A = S.newVar();
  sat::Var B = S.newVar();
  ASSERT_TRUE(S.addBinary(sat::Lit(A), sat::Lit(B)));
  ASSERT_EQ(S.solve(), sat::Outcome::Sat);
  // Adding a further constraint and re-solving must work.
  ASSERT_TRUE(S.addUnit(sat::Lit(A, true)));
  ASSERT_EQ(S.solve(), sat::Outcome::Sat);
  EXPECT_FALSE(S.value(A));
  EXPECT_TRUE(S.value(B));
}

TEST(Sat, ConflictBudgetReportsUnknown) {
  // A hard pigeonhole instance with a one-conflict budget gives up.
  constexpr unsigned Pigeons = 7, Holes = 6;
  sat::Solver S;
  std::vector<std::vector<sat::Var>> P(Pigeons,
                                       std::vector<sat::Var>(Holes));
  for (unsigned I = 0; I < Pigeons; ++I)
    for (unsigned J = 0; J < Holes; ++J)
      P[I][J] = S.newVar();
  for (unsigned I = 0; I < Pigeons; ++I) {
    std::vector<sat::Lit> C;
    for (unsigned J = 0; J < Holes; ++J)
      C.push_back(sat::Lit(P[I][J]));
    ASSERT_TRUE(S.addClause(C));
  }
  for (unsigned J = 0; J < Holes; ++J)
    for (unsigned I1 = 0; I1 < Pigeons; ++I1)
      for (unsigned I2 = I1 + 1; I2 < Pigeons; ++I2)
        ASSERT_TRUE(
            S.addBinary(sat::Lit(P[I1][J], true), sat::Lit(P[I2][J], true)));
  EXPECT_EQ(S.solve(/*ConflictBudget=*/1), sat::Outcome::Unknown);
}

TEST(CodegenDetail, BelLettersCycleAcrossSliceLuts) {
  // A 16-bit LUT xor needs 16 LUT2s: the BEL letters cycle A..H twice.
  Result<rasm::AsmProgram> P = rasm::parseAsmProgram(
      "def f(a:i16, b:i16) -> (y:i16) { y:i16 = xor(a, b) @lut(?\?, ?\?); }");
  ASSERT_TRUE(P.ok()) << P.error();
  Result<rasm::AsmProgram> Placed =
      place::place(P.value(), Device::small());
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  codegen::Utilization Util;
  Result<verilog::Module> M = codegen::generate(
      Placed.value(), tdl::ultrascale(), Device::small(), &Util);
  ASSERT_TRUE(M.ok()) << M.error();
  EXPECT_EQ(Util.Luts, 16u);
  std::string Out = M.value().str();
  size_t FirstA = Out.find("BEL = \"A6LUT\"");
  size_t H = Out.find("BEL = \"H6LUT\"");
  ASSERT_NE(FirstA, std::string::npos);
  ASSERT_NE(H, std::string::npos);
  size_t SecondA = Out.find("BEL = \"A6LUT\"", FirstA + 1);
  EXPECT_NE(SecondA, std::string::npos);
}

TEST(PlaceCheck, DetectsForgedPlacements) {
  Result<rasm::AsmProgram> Orig = rasm::parseAsmProgram(R"(
    def f(a:i8, b:i8) -> (y:i8, z:i8) {
      y:i8 = add(a, b) @dsp(x, r);
      z:i8 = add(b, a) @dsp(x, r+1);
    }
  )");
  ASSERT_TRUE(Orig.ok()) << Orig.error();

  // A placement that breaks the relative row constraint must be caught.
  Result<rasm::AsmProgram> Forged = rasm::parseAsmProgram(R"(
    def f(a:i8, b:i8) -> (y:i8, z:i8) {
      y:i8 = add(a, b) @dsp(2, 0);
      z:i8 = add(b, a) @dsp(2, 4);
    }
  )");
  ASSERT_TRUE(Forged.ok()) << Forged.error();
  Status S = place::checkPlacement(Orig.value(), Forged.value(),
                                   Device::small());
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().find("relative constraint"), std::string::npos);

  // A duplicate slot must be caught.
  Result<rasm::AsmProgram> Dup = rasm::parseAsmProgram(R"(
    def f(a:i8, b:i8) -> (y:i8, z:i8) {
      y:i8 = add(a, b) @dsp(2, 0);
      z:i8 = add(b, a) @dsp(2, 0);
    }
  )");
  ASSERT_TRUE(Dup.ok()) << Dup.error();
  Status S2 = place::checkPlacement(Orig.value(), Dup.value(),
                                    Device::small());
  ASSERT_FALSE(S2.ok());
  EXPECT_NE(S2.error().find("share slot"), std::string::npos);
}

TEST(Dimacs, WriteSolveRoundTrip) {
  // Build, print, re-parse, and solve an instance, confirming the model
  // satisfies the original clause list.
  sat::Cnf C;
  C.NumVars = 5;
  C.Clauses = {{1, 2, -3}, {-1, 4}, {3, -4, 5}, {-5, -2}, {2, 3}};
  Result<sat::Cnf> Again = sat::parseDimacs(C.str());
  ASSERT_TRUE(Again.ok()) << Again.error();
  sat::Solver S;
  ASSERT_TRUE(Again.value().loadInto(S));
  ASSERT_EQ(S.solve(), sat::Outcome::Sat);
  for (const std::vector<int> &Clause : C.Clauses) {
    bool Ok = false;
    for (int L : Clause) {
      bool V = S.value(static_cast<sat::Var>(std::abs(L) - 1));
      if ((L > 0) == V)
        Ok = true;
    }
    EXPECT_TRUE(Ok);
  }
}

TEST(TdlPrinter, HolesRenderAsUnderscores) {
  const tdl::Target &T = tdl::ultrascale();
  for (const tdl::TargetDef &Def : T.defs())
    if (Def.Name == "reg" && Def.numHoles() == 1) {
      EXPECT_NE(Def.str().find("reg[_]("), std::string::npos) << Def.str();
      return;
    }
  FAIL() << "no reg definition with a hole found";
}
