//===- tests/sim_vm_test.cpp - Compiled-simulation VM validation ---------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// The compiled-simulation layer's own test surface: the bytecode format
/// (deterministic encoding, disassemble/assemble round-trips, verifier
/// rejections) and the two lowering passes, checked differentially — the
/// VM must produce byte-identical traces and waveforms to the tree-walking
/// engines it replaces (interpreter for IR programs, gate-level simulator
/// for netlist programs).
///
//===----------------------------------------------------------------------===//

#include "sim/Compile.h"
#include "sim/Emitter.h"
#include "sim/Vm.h"

#include "codegen/NetlistSim.h"
#include "core/Compiler.h"
#include "interp/Interp.h"
#include "interp/Wave.h"
#include "ir/Parser.h"
#include "obs/Coverage.h"
#include "obs/Remarks.h"
#include "obs/Telemetry.h"
#include "verilog/Ast.h"

#include <gtest/gtest.h>

#include <random>

using namespace reticle;
using device::Device;
using interp::Trace;
using interp::Value;
using sim::WaveCapture;
using verilog::Expr;
using verilog::Item;
using verilog::Module;

namespace {

ir::Function parseOk(const char *Source) {
  Result<ir::Function> Fn = ir::parseFunction(Source);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  return Fn.take();
}

Trace randomTrace(const ir::Function &Fn, size_t Cycles, unsigned Seed) {
  Trace T;
  std::mt19937_64 Rng(Seed);
  std::uniform_int_distribution<int64_t> D(-128, 127);
  for (size_t C = 0; C < Cycles; ++C) {
    interp::Step &S = T.appendStep();
    for (const ir::Port &P : Fn.inputs()) {
      if (P.Ty.isBool()) {
        S[P.Name] = Value::makeBool(D(Rng) & 1);
        continue;
      }
      std::vector<int64_t> Lanes;
      for (unsigned L = 0; L < P.Ty.lanes(); ++L)
        Lanes.push_back(D(Rng));
      S[P.Name] = Value::fromLanes(P.Ty, std::move(Lanes));
    }
  }
  return T;
}

void expectTracesEqual(const Trace &A, const Trace &B, const char *What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  EXPECT_TRUE(A == B) << What << ": traces differ";
}

void expectWavesEqual(const WaveCapture &A, const WaveCapture &B,
                      const char *What) {
  ASSERT_EQ(A.signals().size(), B.signals().size()) << What;
  for (size_t I = 0; I < A.signals().size(); ++I) {
    EXPECT_EQ(A.signals()[I].Name, B.signals()[I].Name) << What;
    EXPECT_EQ(A.signals()[I].Width, B.signals()[I].Width)
        << What << ": " << A.signals()[I].Name;
  }
  ASSERT_EQ(A.cycles(), B.cycles()) << What;
  for (size_t C = 0; C < A.cycles(); ++C) {
    const auto &Ea = A.eventsByCycle()[C];
    const auto &Eb = B.eventsByCycle()[C];
    ASSERT_EQ(Ea.size(), Eb.size()) << What << " cycle " << C;
    for (size_t I = 0; I < Ea.size(); ++I) {
      EXPECT_EQ(Ea[I].Id, Eb[I].Id) << What << " cycle " << C;
      EXPECT_EQ(Ea[I].Bits, Eb[I].Bits)
          << What << " cycle " << C << " signal "
          << A.signals()[Ea[I].Id].Name;
      EXPECT_EQ(Ea[I].Changed, Eb[I].Changed) << What << " cycle " << C;
    }
  }
}

/// The full differential sweep for one function: vm-ir vs interp and
/// vm-netlist vs the gate-level tree-walker, traces and waveforms both.
void checkVmParity(const ir::Function &Fn, const Trace &Input) {
  WaveCapture InterpWave;
  Result<Trace> Expected =
      interp::interpret(Fn, Input, &InterpWave, obs::defaultContext());
  ASSERT_TRUE(Expected.ok()) << Expected.error();

  Result<sim::Program> IrProg = sim::compile(Fn);
  ASSERT_TRUE(IrProg.ok()) << IrProg.error();
  EXPECT_EQ(IrProg.value().Source, "ir");

  WaveCapture VmIrWave;
  Result<Trace> VmIr = sim::execute(IrProg.value(), Input, &VmIrWave);
  ASSERT_TRUE(VmIr.ok()) << VmIr.error() << "\n"
                         << sim::disassemble(IrProg.value());
  expectTracesEqual(Expected.value(), VmIr.value(), "vm-ir vs interp");
  expectWavesEqual(InterpWave, VmIrWave, "vm-ir vs interp wave");

  core::CompileOptions Options;
  Options.Dev = Device::small();
  Result<core::CompileResult> R = core::compile(Fn, Options);
  ASSERT_TRUE(R.ok()) << R.error();

  WaveCapture TreeWave;
  Result<Trace> Tree = codegen::simulate(R.value().Verilog, Input, &TreeWave);
  ASSERT_TRUE(Tree.ok()) << Tree.error() << "\n" << R.value().Verilog.str();

  Result<sim::Program> NetProg = sim::compile(R.value().Verilog);
  ASSERT_TRUE(NetProg.ok()) << NetProg.error() << "\n"
                            << R.value().Verilog.str();
  EXPECT_EQ(NetProg.value().Source, "netlist");

  WaveCapture VmNetWave;
  Result<Trace> VmNet = sim::execute(NetProg.value(), Input, &VmNetWave);
  ASSERT_TRUE(VmNet.ok()) << VmNet.error() << "\n"
                          << sim::disassemble(NetProg.value());
  expectTracesEqual(Tree.value(), VmNet.value(), "vm-netlist vs netlist");
  expectWavesEqual(TreeWave, VmNetWave, "vm-netlist vs netlist wave");
}

//===----------------------------------------------------------------------===//
// Differential parity: vm-ir vs interp, vm-netlist vs the tree-walker.
//===----------------------------------------------------------------------===//

TEST(SimVm, ParityCombinationalAdd) {
  ir::Function Fn = parseOk(R"(
    def adder(a:i8, b:i8) -> (y:i8) {
      y:i8 = add(a, b) @??;
    }
  )");
  checkVmParity(Fn, randomTrace(Fn, 16, 1));
}

TEST(SimVm, ParityMacWithRegister) {
  ir::Function Fn = parseOk(R"(
    def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )");
  checkVmParity(Fn, randomTrace(Fn, 24, 2));
}

TEST(SimVm, ParityVectorAdd) {
  ir::Function Fn = parseOk(R"(
    def vadd(a:i8<4>, b:i8<4>) -> (y:i8<4>) {
      y:i8<4> = add(a, b) @??;
    }
  )");
  checkVmParity(Fn, randomTrace(Fn, 12, 3));
}

TEST(SimVm, ParitySliceCatShifts) {
  ir::Function Fn = parseOk(R"(
    def sc(a:i8, b:i8) -> (hi:i8, lo:i8, s1:i8, s2:i8, s3:i8) {
      pair:i8<2> = cat(a, b);
      hi:i8 = slice[8](pair);
      lo:i8 = slice[0](pair);
      s1:i8 = sll[2](a);
      s2:i8 = srl[3](a);
      s3:i8 = sra[1](a);
    }
  )");
  checkVmParity(Fn, randomTrace(Fn, 16, 4));
}

TEST(SimVm, ParityComparisonsAndMux) {
  ir::Function Fn = parseOk(R"(
    def cm(a:i8, b:i8, c:bool) -> (e:bool, l:bool, g:bool, y:i8) {
      e:bool = eq(a, b) @??;
      l:bool = lt(a, b) @??;
      g:bool = ge(a, b) @??;
      y:i8 = mux(c, a, b) @??;
    }
  )");
  checkVmParity(Fn, randomTrace(Fn, 20, 5));
}

TEST(SimVm, ParityBitwiseAndNot) {
  ir::Function Fn = parseOk(R"(
    def bw(a:i8, b:i8) -> (x:i8, o:i8, n:i8, z:i8) {
      x:i8 = xor(a, b) @??;
      o:i8 = or(a, b) @??;
      n:i8 = not(a) @??;
      z:i8 = and(a, b) @??;
    }
  )");
  checkVmParity(Fn, randomTrace(Fn, 16, 6));
}

TEST(SimVm, ParityRegisterInitAndConst) {
  ir::Function Fn = parseOk(R"(
    def counter(en:bool) -> (y:i8) {
      step:i8 = const[4];
      next:i8 = add(y, step) @??;
      y:i8 = reg[3](next, en) @??;
    }
  )");
  checkVmParity(Fn, randomTrace(Fn, 24, 7));
}

//===----------------------------------------------------------------------===//
// Bytecode layer: determinism, round-trip, verifier.
//===----------------------------------------------------------------------===//

TEST(SimVm, CompileIsDeterministic) {
  ir::Function Fn = parseOk(R"(
    def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )");
  Result<sim::Program> A = sim::compile(Fn);
  Result<sim::Program> B = sim::compile(Fn);
  ASSERT_TRUE(A.ok()) << A.error();
  ASSERT_TRUE(B.ok()) << B.error();
  EXPECT_EQ(A.value().encode(), B.value().encode());

  core::CompileOptions Options;
  Options.Dev = Device::small();
  Result<core::CompileResult> R = core::compile(Fn, Options);
  ASSERT_TRUE(R.ok()) << R.error();
  Result<sim::Program> Na = sim::compile(R.value().Verilog);
  Result<sim::Program> Nb = sim::compile(R.value().Verilog);
  ASSERT_TRUE(Na.ok()) << Na.error();
  ASSERT_TRUE(Nb.ok()) << Nb.error();
  EXPECT_EQ(Na.value().encode(), Nb.value().encode());
  // IR and netlist lowerings of the same design are distinct programs.
  EXPECT_NE(A.value().encode(), Na.value().encode());
}

TEST(SimVm, DisassembleAssembleRoundTrip) {
  ir::Function Fn = parseOk(R"(
    def sc(a:i8, b:i8, en:bool) -> (hi:i8, y:i8) {
      pair:i8<2> = cat(a, b);
      hi:i8 = slice[8](pair);
      t:i8 = add(hi, b) @??;
      y:i8 = reg[1](t, en) @??;
    }
  )");
  Result<sim::Program> P = sim::compile(Fn);
  ASSERT_TRUE(P.ok()) << P.error();

  std::string Text = sim::disassemble(P.value());
  EXPECT_NE(Text.find("reticle-sim-program-v1"), std::string::npos);
  Result<sim::Program> Back = sim::assemble(Text);
  ASSERT_TRUE(Back.ok()) << Back.error() << "\n" << Text;
  EXPECT_EQ(P.value().encode(), Back.value().encode());
  // A second round through the text form is a fixpoint.
  EXPECT_EQ(sim::disassemble(Back.value()), Text);

  core::CompileOptions Options;
  Options.Dev = Device::small();
  Result<core::CompileResult> R = core::compile(Fn, Options);
  ASSERT_TRUE(R.ok()) << R.error();
  Result<sim::Program> Np = sim::compile(R.value().Verilog);
  ASSERT_TRUE(Np.ok()) << Np.error();
  Result<sim::Program> NBack = sim::assemble(sim::disassemble(Np.value()));
  ASSERT_TRUE(NBack.ok()) << NBack.error();
  EXPECT_EQ(Np.value().encode(), NBack.value().encode());
}

/// A minimal well-formed program to perturb: one word, empty segments.
sim::Program trivialProgram() {
  sim::Program P;
  P.Name = "t";
  P.Source = "ir";
  P.NumWords = 1;
  P.MaxStack = 2;
  P.Init = {uint32_t(sim::Op::EndSeg)};
  P.Eval = {uint32_t(sim::Op::EndSeg)};
  P.Commit = {uint32_t(sim::Op::EndSeg)};
  return P;
}

TEST(SimVm, VerifierAcceptsTrivialProgram) {
  EXPECT_TRUE(sim::verify(trivialProgram()).ok());
}

TEST(SimVm, VerifierRejectsUnterminatedSegment) {
  sim::Program P = trivialProgram();
  P.Eval.clear(); // no EndSeg
  EXPECT_FALSE(sim::verify(P).ok());
}

TEST(SimVm, VerifierRejectsStackUnderflow) {
  sim::Program P = trivialProgram();
  P.Eval = {uint32_t(sim::Op::Add), uint32_t(sim::Op::EndSeg)};
  EXPECT_FALSE(sim::verify(P).ok());
}

TEST(SimVm, VerifierRejectsValueLeftOnStack) {
  sim::Program P = trivialProgram();
  P.Pool = {42};
  P.Eval = {uint32_t(sim::Op::LoadConst), 0, uint32_t(sim::Op::EndSeg)};
  EXPECT_FALSE(sim::verify(P).ok());
}

TEST(SimVm, VerifierRejectsOutOfBoundsWord) {
  sim::Program P = trivialProgram();
  P.Eval = {uint32_t(sim::Op::LoadField), 7, 0, 8,
            uint32_t(sim::Op::StoreField), 0, 0, 8,
            uint32_t(sim::Op::EndSeg)};
  EXPECT_FALSE(sim::verify(P).ok()); // word 7 >= NumWords
}

TEST(SimVm, VerifierRejectsOutOfBoundsConstant) {
  sim::Program P = trivialProgram();
  P.Eval = {uint32_t(sim::Op::LoadConst), 0,
            uint32_t(sim::Op::StoreField), 0, 0, 64,
            uint32_t(sim::Op::EndSeg)};
  EXPECT_FALSE(sim::verify(P).ok()); // pool is empty
}

TEST(SimVm, VerifierRejectsStackBeyondMaxStack) {
  sim::Program P = trivialProgram();
  P.Pool = {1};
  P.MaxStack = 1;
  P.Eval = {uint32_t(sim::Op::LoadConst),  0,
            uint32_t(sim::Op::LoadConst),  0,
            uint32_t(sim::Op::Add),
            uint32_t(sim::Op::StoreField), 0, 0, 64,
            uint32_t(sim::Op::EndSeg)};
  EXPECT_FALSE(sim::verify(P).ok());
}

TEST(SimVm, VerifierRejectsBadFieldGeometry) {
  sim::Program P = trivialProgram();
  P.Eval = {uint32_t(sim::Op::LoadField), 0, 60, 8,
            uint32_t(sim::Op::StoreField), 0, 0, 8,
            uint32_t(sim::Op::EndSeg)};
  EXPECT_FALSE(sim::verify(P).ok()); // lo + len > 64
}

TEST(SimVm, VerifierRejectsBadShiftAmount) {
  sim::Program P = trivialProgram();
  P.Pool = {1};
  P.Eval = {uint32_t(sim::Op::LoadConst), 0, uint32_t(sim::Op::Shl), 64,
            uint32_t(sim::Op::StoreField), 0, 0, 64,
            uint32_t(sim::Op::EndSeg)};
  EXPECT_FALSE(sim::verify(P).ok());
}

TEST(SimVm, VerifierRejectsUnknownOpcode) {
  sim::Program P = trivialProgram();
  P.Eval = {sim::NumOps + 3, uint32_t(sim::Op::EndSeg)};
  EXPECT_FALSE(sim::verify(P).ok());
}

TEST(SimVm, ExecuteRefusesUnverifiableProgram) {
  sim::Program P = trivialProgram();
  P.Eval.clear();
  Trace Input;
  Input.appendStep();
  Result<Trace> Out = sim::execute(P, Input);
  EXPECT_FALSE(Out.ok());
}

//===----------------------------------------------------------------------===//
// Emitter: store-then-load peephole, debug marks, static opcode histogram.
//===----------------------------------------------------------------------===//

TEST(SimVm, EmitterPeepholeRewritesStoreThenLoad) {
  sim::Program P;
  P.NumWords = 2;
  sim::detail::Emitter E(P);
  E.use(P.Eval);
  E.loadConst(5);
  E.storeWord(0);
  E.loadWord(0); // whole-word load of the word just stored: dup instead
  E.storeWord(1);
  E.endSeg();
  std::vector<uint32_t> Expect = {
      uint32_t(sim::Op::LoadConst),  0,
      uint32_t(sim::Op::Dup),
      uint32_t(sim::Op::StoreField), 0, 0, 64,
      uint32_t(sim::Op::StoreField), 1, 0, 64,
      uint32_t(sim::Op::EndSeg)};
  EXPECT_EQ(P.Eval, Expect);
  EXPECT_GE(P.MaxStack, 2u);
}

TEST(SimVm, EmitterPeepholeRequiresWholeWordAdjacency) {
  // A partial-field load must not be rewritten: the stored value on the
  // stack is the whole word, not the field.
  sim::Program P;
  P.NumWords = 2;
  sim::detail::Emitter E(P);
  E.use(P.Eval);
  E.loadConst(5);
  E.storeWord(0);
  E.loadField(0, 0, 8);
  E.storeWord(1);
  E.endSeg();
  EXPECT_EQ(P.Eval[6], uint32_t(sim::Op::LoadField));

  // Nor a load of a different word than the preceding store's.
  sim::Program Q;
  Q.NumWords = 2;
  sim::detail::Emitter F(Q);
  F.use(Q.Eval);
  F.loadConst(5);
  F.storeWord(1);
  F.loadWord(0);
  F.storeWord(0);
  F.endSeg();
  EXPECT_EQ(Q.Eval[6], uint32_t(sim::Op::LoadField));
}

TEST(SimVm, EmitterPeepholeShiftsDebugMarks) {
  // The inserted dup shifts every instruction at or past the store by
  // one word; a mark pointing at the store must move with it so it keeps
  // naming an instruction boundary.
  sim::Program P;
  P.NumWords = 1;
  sim::detail::Emitter E(P);
  E.use(P.Eval);
  E.setSource("x");
  E.loadConst(1); // mark {0 -> x}
  E.setSource("y");
  E.storeWord(0); // mark {2 -> y}, store at offset 2
  E.loadWord(0);  // peephole: dup inserted at offset 2
  E.storeWord(0);
  E.endSeg();
  ASSERT_EQ(P.SourceNames.size(), 2u);
  EXPECT_EQ(P.SourceNames[0], "x");
  EXPECT_EQ(P.SourceNames[1], "y");
  ASSERT_EQ(P.EvalSrc.size(), 2u);
  EXPECT_EQ(P.EvalSrc[0].Offset, 0u);
  EXPECT_EQ(P.EvalSrc[1].Offset, 3u); // the store, shifted by the dup
  EXPECT_STREQ(P.sourceAt(1, 2), "x"); // the dup joins the preceding range
  EXPECT_STREQ(P.sourceAt(1, 3), "y");
}

TEST(SimVm, EmitterCountsStaticOpcodeHistogram) {
#ifdef RETICLE_NO_TELEMETRY
  GTEST_SKIP() << "telemetry compiled out";
#endif
  obs::Telemetry Telem;
  obs::RemarkStream Rem;
  obs::Coverage Cov;
  obs::Context Ctx{&Telem, &Rem, &Cov};
  ir::Function Fn = parseOk(R"(
    def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )");
  Result<sim::Program> P = sim::compile(Fn, Ctx);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(Telem.counter("sim.vm.compiles").load(), 1u);
  EXPECT_GT(Telem.counter("sim.vm.op.storefield").load(), 0u);
  EXPECT_GT(Telem.counter("sim.vm.op.endseg").load(), 0u);
  EXPECT_EQ(Telem.counter("sim.vm.program.words").load(),
            P.value().NumWords);
}

//===----------------------------------------------------------------------===//
// Debug-info side table and the profiled executor.
//===----------------------------------------------------------------------===//

TEST(SimVm, SourceTableSurvivesAssembleRoundTrip) {
  ir::Function Fn = parseOk(R"(
    def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )");
  Result<sim::Program> P = sim::compile(Fn);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_FALSE(P.value().EvalSrc.empty());
  auto Has = [&](const char *Name) {
    for (const std::string &S : P.value().SourceNames)
      if (S == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("t0"));
  EXPECT_TRUE(Has("t1"));
  EXPECT_TRUE(Has("y"));

  Result<sim::Program> Back = sim::assemble(sim::disassemble(P.value()));
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_EQ(Back.value().SourceNames, P.value().SourceNames);
  for (unsigned Seg = 0; Seg < 3; ++Seg) {
    ASSERT_EQ(Back.value().marks(Seg).size(), P.value().marks(Seg).size());
    for (size_t I = 0; I < P.value().marks(Seg).size(); ++I) {
      EXPECT_EQ(Back.value().marks(Seg)[I].Offset,
                P.value().marks(Seg)[I].Offset);
      EXPECT_EQ(Back.value().marks(Seg)[I].Name,
                P.value().marks(Seg)[I].Name);
    }
  }
}

TEST(SimVm, ProfiledExecuteAttributesAndMatchesPlainRun) {
  ir::Function Fn = parseOk(R"(
    def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )");
  Result<sim::Program> P = sim::compile(Fn);
  ASSERT_TRUE(P.ok()) << P.error();
  Trace In = randomTrace(Fn, 20000, 9);

  Result<Trace> Plain = sim::execute(P.value(), In);
  ASSERT_TRUE(Plain.ok()) << Plain.error();
  sim::VmProfile Prof;
  Result<Trace> Out = sim::execute(P.value(), In, Prof);
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_TRUE(Plain.value() == Out.value()) << "profiling changed the run";

  EXPECT_EQ(Prof.Cycles, 20000u);
  EXPECT_FALSE(Prof.Aborted);
  EXPECT_GT(Prof.TotalOps, 0u);
  // The acceptance bar: at least 95% of executed ops attribute to a
  // source (mac attributes every one).
  EXPECT_GE(Prof.AttributedOps * 100, Prof.TotalOps * 95);
  uint64_t SiteSum = 0;
  for (const sim::ProfileSite &S : Prof.Sites)
    SiteSum += S.Count;
  EXPECT_EQ(SiteSum, Prof.TotalOps) << "sites must partition the op count";
  EXPECT_GT(Prof.SampledCycles, 0u);

  obs::Json Doc = sim::profileJson(P.value(), Prof);
  const obs::Json *Schema = Doc.find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->asString(), "reticle-profile-v1");
  const obs::Json *Ops = Doc.find("ops");
  ASSERT_NE(Ops, nullptr);
  EXPECT_EQ(Ops->find("total")->asInt(),
            static_cast<int64_t>(Prof.TotalOps));
  const obs::Json *Hot = Doc.find("hot_instructions");
  ASSERT_NE(Hot, nullptr);
  EXPECT_GT(Hot->size(), 0u);
  const obs::Json *Signals = Doc.find("hot_signals");
  ASSERT_NE(Signals, nullptr);
  EXPECT_GT(Signals->size(), 0u);
}

TEST(SimVm, ProfiledExecuteFlushesOnAbort) {
  ir::Function Fn = parseOk(R"(
    def adder(a:i8, b:i8) -> (y:i8) {
      y:i8 = add(a, b) @??;
    }
  )");
  Result<sim::Program> P = sim::compile(Fn);
  ASSERT_TRUE(P.ok()) << P.error();
  Trace In;
  interp::Step &S0 = In.appendStep();
  S0["a"] = Value::splat(ir::Type::makeInt(8), 1);
  S0["b"] = Value::splat(ir::Type::makeInt(8), 2);
  interp::Step &S1 = In.appendStep();
  S1["a"] = Value::splat(ir::Type::makeInt(8), 3); // "b" missing: abort

  sim::VmProfile Prof;
  Result<Trace> Out = sim::execute(P.value(), In, Prof);
  ASSERT_FALSE(Out.ok());
  EXPECT_TRUE(Prof.Aborted);
  EXPECT_EQ(Prof.Cycles, 1u) << "one cycle completed before the abort";
  EXPECT_GT(Prof.TotalOps, 0u) << "the partial run still attributes";
}

TEST(SimVm, MissingInputReportsCycle) {
  ir::Function Fn = parseOk(R"(
    def adder(a:i8, b:i8) -> (y:i8) {
      y:i8 = add(a, b) @??;
    }
  )");
  Result<sim::Program> P = sim::compile(Fn);
  ASSERT_TRUE(P.ok()) << P.error();
  Trace Input;
  interp::Step &S = Input.appendStep();
  S["a"] = Value::splat(ir::Type::makeInt(8), 1);
  Result<Trace> Out = sim::execute(P.value(), Input);
  ASSERT_FALSE(Out.ok());
  EXPECT_NE(Out.error().find("input 'b' missing"), std::string::npos)
      << Out.error();
}

TEST(SimVm, TypeMismatchMatchesInterpMessage) {
  ir::Function Fn = parseOk(R"(
    def adder(a:i8, b:i8) -> (y:i8) {
      y:i8 = add(a, b) @??;
    }
  )");
  Trace Input;
  interp::Step &S = Input.appendStep();
  S["a"] = Value::splat(ir::Type::makeInt(8), 1);
  S["b"] = Value::makeBool(true);

  Result<Trace> FromInterp = interp::interpret(Fn, Input);
  ASSERT_FALSE(FromInterp.ok());

  Result<sim::Program> P = sim::compile(Fn);
  ASSERT_TRUE(P.ok()) << P.error();
  Result<Trace> FromVm = sim::execute(P.value(), Input);
  ASSERT_FALSE(FromVm.ok());
  EXPECT_EQ(FromInterp.error(), FromVm.error());
}

//===----------------------------------------------------------------------===//
// The >64-bit DSP multiplier operand regression (silent truncation fix).
//===----------------------------------------------------------------------===//

/// A netlist whose DSP48E2 multiplies a 70-bit operand: both simulators
/// must refuse it instead of silently truncating to the low 64 bits.
Module wideMultiplierModule() {
  Module M("wide");
  M.addPort(verilog::Dir::Input, "clock", 0);
  M.addPort(verilog::Dir::Input, "a", 70);
  M.addPort(verilog::Dir::Input, "b", 18);
  M.addPort(verilog::Dir::Output, "y", 48);
  Item D = Module::makeInstance("DSP48E2", "d0");
  D.Params.push_back({"USE_SIMD", Expr::str("ONE48")});
  D.Params.push_back({"USE_MULT", Expr::str("MULTIPLY")});
  D.Params.push_back({"ALUMODE", Expr::intLit(4, 0x0)});
  D.Params.push_back({"OPMODE", Expr::intLit(9, 0x05 | (0x3u << 4))});
  D.Params.push_back({"PREG", Expr::intLit(1, 0)});
  D.Connections.push_back({"A", Expr::ref("a")});
  D.Connections.push_back({"B", Expr::ref("b")});
  D.Connections.push_back({"C", Expr::intLit(48, 0)});
  D.Connections.push_back({"P", Expr::ref("y")});
  M.addItem(std::move(D));
  return M;
}

Trace wideMultiplierInput() {
  Trace T;
  interp::Step &S = T.appendStep();
  S["a"] = Value::fromBits(ir::Type::makeInt(1, 70),
                           std::vector<bool>(70, true));
  S["b"] = Value::splat(ir::Type::makeInt(18), 3);
  return T;
}

TEST(SimVm, TreeSimulatorRejectsWideDspMultiplier) {
  Result<Trace> Out =
      codegen::simulate(wideMultiplierModule(), wideMultiplierInput());
  ASSERT_FALSE(Out.ok());
  EXPECT_NE(Out.error().find("wider than 64 bits"), std::string::npos)
      << Out.error();
}

TEST(SimVm, NetlistLoweringRejectsWideDspMultiplier) {
  Result<sim::Program> P = sim::compile(wideMultiplierModule());
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("wider than 64 bits"), std::string::npos)
      << P.error();
}

//===----------------------------------------------------------------------===//
// Netlist lowering details: combinational loops, program shape.
//===----------------------------------------------------------------------===//

TEST(SimVm, NetlistLoweringRejectsCombinationalLoop) {
  Module M("loop");
  M.addPort(verilog::Dir::Input, "clock", 0);
  M.addPort(verilog::Dir::Output, "y", 1);
  M.addWire("w", 1);
  M.addAssign(Expr::ref("w"), Expr::ref("y"));
  M.addAssign(Expr::ref("y"), Expr::ref("w"));
  Result<sim::Program> P = sim::compile(M);
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("settle"), std::string::npos) << P.error();
}

TEST(SimVm, ProgramCountsMatchMetadata) {
  ir::Function Fn = parseOk(R"(
    def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )");
  Result<sim::Program> P = sim::compile(Fn);
  ASSERT_TRUE(P.ok()) << P.error();
  const sim::Program &Prog = P.value();
  EXPECT_EQ(Prog.Inputs.size(), 4u);
  EXPECT_EQ(Prog.Outputs.size(), 1u);
  EXPECT_GE(Prog.NumWords, 7u); // 4 inputs + t0 + t1 + y
  EXPECT_GE(Prog.MaxStack, 2u);
  EXPECT_EQ(Prog.Signals.size(), 7u);
  for (const sim::PortInfo &Pi : Prog.Inputs)
    EXPECT_FALSE(Pi.Packed);
}

} // namespace
