//===- tests/cascade_test.cpp - Cascade layout optimization tests --------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "isel/Cascade.h"

#include "isel/Select.h"
#include "ir/Parser.h"
#include "rasm/AsmParser.h"
#include "tdl/Ultrascale.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::isel;
using rasm::AsmProgram;
using rasm::Coord;

namespace {

AsmProgram parseAsmOk(const char *Source) {
  Result<AsmProgram> P = rasm::parseAsmProgram(Source);
  EXPECT_TRUE(P.ok()) << P.error();
  return P.take();
}

} // namespace

TEST(Cascade, RewritesFigure11Chain) {
  AsmProgram P = parseAsmOk(R"(
    def dot(a:i8, b:i8, c:i8, d:i8, in:i8) -> (t1:i8) {
      t0:i8 = muladd(a, b, in) @dsp(??, ??);
      t1:i8 = muladd(c, d, t0) @dsp(??, ??);
    }
  )");
  CascadeStats Stats;
  Status S = cascadePass(P, tdl::ultrascale(), 64, &Stats);
  ASSERT_TRUE(S.ok()) << S.error();
  EXPECT_EQ(Stats.Chains, 1u);
  EXPECT_EQ(Stats.Rewritten, 2u);
  EXPECT_EQ(P.body()[0].opName(), "muladd_co");
  EXPECT_EQ(P.body()[1].opName(), "muladd_ci");
  // Shared column variable; consecutive rows.
  ASSERT_TRUE(P.body()[0].loc().X.isVar());
  EXPECT_EQ(P.body()[0].loc().X.name(), P.body()[1].loc().X.name());
  EXPECT_EQ(P.body()[0].loc().Y.offset() + 1, P.body()[1].loc().Y.offset());
}

TEST(Cascade, MiddleElementsBecomeCio) {
  AsmProgram P = parseAsmOk(R"(
    def dot3(a:i8, b:i8, c:i8, d:i8, e:i8, f:i8, in:i8) -> (t2:i8) {
      t0:i8 = muladd(a, b, in) @dsp(??, ??);
      t1:i8 = muladd(c, d, t0) @dsp(??, ??);
      t2:i8 = muladd(e, f, t1) @dsp(??, ??);
    }
  )");
  ASSERT_TRUE(cascadePass(P, tdl::ultrascale()).ok());
  EXPECT_EQ(P.body()[0].opName(), "muladd_co");
  EXPECT_EQ(P.body()[1].opName(), "muladd_cio");
  EXPECT_EQ(P.body()[2].opName(), "muladd_ci");
}

TEST(Cascade, SharedAccumulatorBlocksChain) {
  // t0 feeds both t1 and the output list: not single-use, no cascade.
  AsmProgram P = parseAsmOk(R"(
    def f(a:i8, b:i8, c:i8, d:i8, in:i8) -> (t1:i8, t0:i8) {
      t0:i8 = muladd(a, b, in) @dsp(??, ??);
      t1:i8 = muladd(c, d, t0) @dsp(??, ??);
    }
  )");
  CascadeStats Stats;
  ASSERT_TRUE(cascadePass(P, tdl::ultrascale(), 64, &Stats).ok());
  EXPECT_EQ(Stats.Chains, 0u);
  EXPECT_EQ(P.body()[0].opName(), "muladd");
}

TEST(Cascade, NonAccumulatorUseDoesNotChain) {
  // t0 feeds t1's multiplicand, not its accumulator: no cascade.
  AsmProgram P = parseAsmOk(R"(
    def f(a:i8, b:i8, c:i8, in:i8) -> (t1:i8) {
      t0:i8 = muladd(a, b, in) @dsp(??, ??);
      t1:i8 = muladd(t0, c, in) @dsp(??, ??);
    }
  )");
  CascadeStats Stats;
  ASSERT_TRUE(cascadePass(P, tdl::ultrascale(), 64, &Stats).ok());
  EXPECT_EQ(Stats.Chains, 0u);
}

TEST(Cascade, PinnedLocationsAreLeftAlone) {
  AsmProgram P = parseAsmOk(R"(
    def f(a:i8, b:i8, c:i8, d:i8, in:i8) -> (t1:i8) {
      t0:i8 = muladd(a, b, in) @dsp(0, 3);
      t1:i8 = muladd(c, d, t0) @dsp(??, ??);
    }
  )");
  CascadeStats Stats;
  ASSERT_TRUE(cascadePass(P, tdl::ultrascale(), 64, &Stats).ok());
  EXPECT_EQ(Stats.Chains, 0u);
  EXPECT_EQ(P.body()[0].opName(), "muladd");
}

TEST(Cascade, LongChainsSplitAtMaxLength) {
  std::string Source = "def long(in:i8";
  for (int I = 0; I < 8; ++I)
    Source += ", a" + std::to_string(I) + ":i8, b" + std::to_string(I) +
              ":i8";
  Source += ") -> (t7:i8) {\n";
  std::string Prev = "in";
  for (int I = 0; I < 8; ++I) {
    std::string T = "t" + std::to_string(I);
    Source += "  " + T + ":i8 = muladd(a" + std::to_string(I) + ", b" +
              std::to_string(I) + ", " + Prev + ") @dsp(?\?, ?\?);\n";
    Prev = T;
  }
  Source += "}\n";
  AsmProgram P = parseAsmOk(Source.c_str());
  CascadeStats Stats;
  ASSERT_TRUE(cascadePass(P, tdl::ultrascale(), 4, &Stats).ok());
  // 8 instructions with MaxChain=4: two chains of four.
  EXPECT_EQ(Stats.Chains, 2u);
  EXPECT_EQ(Stats.Rewritten, 8u);
  EXPECT_EQ(P.body()[0].opName(), "muladd_co");
  EXPECT_EQ(P.body()[3].opName(), "muladd_ci");
  EXPECT_EQ(P.body()[4].opName(), "muladd_co");
  EXPECT_EQ(P.body()[7].opName(), "muladd_ci");
  EXPECT_NE(P.body()[0].loc().X.name(), P.body()[4].loc().X.name());
}

TEST(Cascade, EndToEndFromSelection) {
  // IR mul/add chains select to muladds, then cascade into one column.
  Result<ir::Function> Fn = ir::parseFunction(R"(
    def dot(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, in:i8) -> (t2:i8) {
      m0:i8 = mul(a0, b0) @??;
      t0:i8 = add(m0, in) @??;
      m1:i8 = mul(a1, b1) @??;
      t1:i8 = add(m1, t0) @??;
      m2:i8 = mul(a2, b2) @??;
      t2:i8 = add(m2, t1) @??;
    }
  )");
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  Result<AsmProgram> P = select(Fn.value(), tdl::ultrascale());
  ASSERT_TRUE(P.ok()) << P.error();
  CascadeStats Stats;
  AsmProgram Prog = P.take();
  ASSERT_TRUE(cascadePass(Prog, tdl::ultrascale(), 64, &Stats).ok());
  EXPECT_EQ(Stats.Chains, 1u);
  EXPECT_EQ(Stats.Rewritten, 3u);
}
