//===- tests/isel_test.cpp - Instruction selection tests -----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "isel/Select.h"

#include "isel/Dfg.h"
#include "ir/Parser.h"
#include "tdl/Ultrascale.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::isel;
using ir::Function;

namespace {

Function parseOk(const char *Source) {
  Result<Function> Fn = ir::parseFunction(Source);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  return Fn.take();
}

/// Counts non-wire instructions with the given op name.
unsigned countOps(const rasm::AsmProgram &P, const std::string &Name) {
  unsigned Count = 0;
  for (const rasm::AsmInstr &I : P.body())
    if (!I.isWire() && I.opName() == Name)
      ++Count;
  return Count;
}

} // namespace

TEST(Dfg, RootClassification) {
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8, c:i8) -> (y:i8, z:i8) {
      t0:i8 = mul(a, b) @??;     // single use by t1: internal
      t1:i8 = add(t0, c) @??;    // two uses: root
      y:i8 = add(t1, a) @??;     // output: root
      z:i8 = add(t1, b) @??;     // output: root
    }
  )");
  Result<Dfg> G = Dfg::build(Fn);
  ASSERT_TRUE(G.ok()) << G.error();
  EXPECT_FALSE(G.value().node(G.value().nodeOf("t0")).IsRoot);
  EXPECT_TRUE(G.value().node(G.value().nodeOf("t1")).IsRoot);
  EXPECT_TRUE(G.value().node(G.value().nodeOf("y")).IsRoot);
  EXPECT_TRUE(G.value().node(G.value().nodeOf("z")).IsRoot);
  EXPECT_EQ(G.value().roots().size(), 3u);
}

TEST(Dfg, RegistersAreAlwaysRoots) {
  Function Fn = parseOk(R"(
    def f(a:i8, en:bool) -> (y:i8) {
      t0:i8 = reg[0](a, en) @??;
      y:i8 = add(t0, a) @??;
    }
  )");
  Result<Dfg> G = Dfg::build(Fn);
  ASSERT_TRUE(G.ok()) << G.error();
  EXPECT_TRUE(G.value().node(G.value().nodeOf("t0")).IsRoot);
}

TEST(Dfg, ComputeFeedingWireIsRoot) {
  Function Fn = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      t0:i8 = add(a, a) @??;
      y:i8 = sll[1](t0);
    }
  )");
  Result<Dfg> G = Dfg::build(Fn);
  ASSERT_TRUE(G.ok()) << G.error();
  EXPECT_TRUE(G.value().node(G.value().nodeOf("t0")).IsRoot);
}

TEST(Select, MulAddFusesIntoOneDsp) {
  // Figure 8: mul feeding add becomes a single muladd (cost 1 DSP, not 2).
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8, c:i8) -> (t1:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
    }
  )");
  SelectionStats Stats;
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale(), &Stats);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(countOps(P.value(), "muladd"), 1u);
  EXPECT_EQ(Stats.NumAsmOps, 1u);
  const rasm::AsmInstr &I = P.value().body()[0];
  EXPECT_EQ(I.loc().Prim, ir::Resource::Dsp);
  ASSERT_EQ(I.args().size(), 3u);
  EXPECT_EQ(I.args()[0], "a");
  EXPECT_EQ(I.args()[1], "b");
  EXPECT_EQ(I.args()[2], "c");
}

TEST(Select, MulAddDoesNotFuseAcrossSharedValue) {
  // t0 has two users, so it is a root and must be materialized on its own.
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8, c:i8) -> (t1:i8, t2:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      t2:i8 = add(t0, a) @??;
    }
  )");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(countOps(P.value(), "muladd"), 0u);
  EXPECT_EQ(countOps(P.value(), "mul"), 1u);
  EXPECT_EQ(countOps(P.value(), "add"), 2u);
}

TEST(Select, SmallScalarAddPrefersLuts) {
  Function Fn = parseOk("def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @??; }");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_TRUE(P.ok()) << P.error();
  ASSERT_EQ(P.value().body().size(), 1u);
  EXPECT_EQ(P.value().body()[0].loc().Prim, ir::Resource::Lut);
}

TEST(Select, VectorAddPrefersDspSimd) {
  // 4x8-bit lanes on LUTs costs 32; one SIMD DSP costs 16.
  Function Fn = parseOk(
      "def f(a:i8<4>, b:i8<4>) -> (y:i8<4>) { y:i8<4> = add(a, b) @??; }");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_TRUE(P.ok()) << P.error();
  ASSERT_EQ(P.value().body().size(), 1u);
  EXPECT_EQ(P.value().body()[0].loc().Prim, ir::Resource::Dsp);
}

TEST(Select, ResourceAnnotationsAreHardConstraints) {
  // Forcing the scalar add onto a DSP must be honored even though LUTs are
  // cheaper.
  Function Fn = parseOk(
      "def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @dsp; }");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(P.value().body()[0].loc().Prim, ir::Resource::Dsp);
}

TEST(Select, UnsatisfiableConstraintIsRejected) {
  // mux cannot run on a DSP; the compiler rejects instead of ignoring the
  // request (unlike HDL hints, Section 2).
  Function Fn = parseOk(R"(
    def f(c:bool, a:i8, b:i8) -> (y:i8) {
      y:i8 = mux(c, a, b) @dsp;
    }
  )");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("unsatisfiable"), std::string::npos);
}

TEST(Select, AnnotationBlocksFusionAcrossPrimitives) {
  // mul @dsp feeding add @lut cannot fuse into a DSP muladd.
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8, c:i8) -> (t1:i8) {
      t0:i8 = mul(a, b) @dsp;
      t1:i8 = add(t0, c) @lut;
    }
  )");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(countOps(P.value(), "muladd"), 0u);
  EXPECT_EQ(countOps(P.value(), "mul"), 1u);
  EXPECT_EQ(countOps(P.value(), "add"), 1u);
}

TEST(Select, AddRegFusesWithHoleTransfer) {
  Function Fn = parseOk(R"(
    def f(a:i8<4>, b:i8<4>, en:bool) -> (y:i8<4>) {
      t0:i8<4> = add(a, b) @dsp;
      y:i8<4> = reg[7](t0, en) @??;
    }
  )");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_TRUE(P.ok()) << P.error();
  ASSERT_EQ(countOps(P.value(), "addreg"), 1u);
  const rasm::AsmInstr &I = P.value().body()[0];
  ASSERT_EQ(I.attrs().size(), 1u);
  EXPECT_EQ(I.attrs()[0], 7); // the register init value flows through
}

TEST(Select, WireInstructionsPassThroughAndDeadOnesPrune) {
  Function Fn = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      t0:i8 = sll[1](a);
      dead:i8 = srl[2](a);
      y:i8 = add(t0, a) @??;
    }
  )");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_TRUE(P.ok()) << P.error();
  bool SawSll = false, SawDead = false;
  for (const rasm::AsmInstr &I : P.value().body()) {
    if (I.isWire() && I.wireOp() == ir::WireOp::Sll)
      SawSll = true;
    if (I.dst() == "dead")
      SawDead = true;
  }
  EXPECT_TRUE(SawSll);
  EXPECT_FALSE(SawDead);
}

TEST(Select, CommutativeMatchingFindsSwappedMulAdd) {
  // add(c, mul(a, b)): the accumulator arrives as the first operand.
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8, c:i8) -> (t1:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(c, t0) @??;
    }
  )");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(countOps(P.value(), "muladd"), 1u);
}

TEST(Select, CounterWithSelfReference) {
  // Figure 12b: the accumulator register refers to its own output.
  Function Fn = parseOk(R"(
    def counter() -> (t3:i8) {
      t0:bool = const[1];
      t1:i8 = const[4];
      t2:i8 = add(t3, t1) @??;
      t3:i8 = reg[0](t2, t0) @??;
    }
  )");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_TRUE(P.ok()) << P.error();
  // add+reg fuse into addreg whose first argument is its own result.
  ASSERT_EQ(countOps(P.value(), "addreg"), 1u);
  for (const rasm::AsmInstr &I : P.value().body())
    if (!I.isWire() && I.opName() == "addreg") {
      EXPECT_EQ(I.args()[0], "t3");
    }
}

TEST(Select, RejectsUnsupportedType) {
  Function Fn = parseOk(
      "def f(a:i3, b:i3) -> (y:i3) { y:i3 = add(a, b) @??; }");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("no instruction"), std::string::npos);
}

TEST(Select, FsmStyleControlSelectsLutsOnly) {
  Function Fn = parseOk(R"(
    def fsm(in:i8, en:bool) -> (state:i8) {
      s1:i8 = const[1];
      s2:i8 = const[2];
      c0:bool = eq(state, s1) @??;
      c1:bool = lt(in, s2) @??;
      take:bool = and(c0, c1) @??;
      nextv:i8 = mux(take, s2, s1) @??;
      state:i8 = reg[1](nextv, en) @??;
    }
  )");
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale());
  ASSERT_TRUE(P.ok()) << P.error();
  for (const rasm::AsmInstr &I : P.value().body())
    if (!I.isWire()) {
      EXPECT_EQ(I.loc().Prim, ir::Resource::Lut) << I.str();
    }
}

TEST(Select, StatsAreReported) {
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8, c:i8) -> (t1:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
    }
  )");
  SelectionStats Stats;
  Result<rasm::AsmProgram> P = select(Fn, tdl::ultrascale(), &Stats);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(Stats.NumTrees, 1u);
  EXPECT_EQ(Stats.NumAsmOps, 1u);
  EXPECT_EQ(Stats.TotalArea, 16);
}
