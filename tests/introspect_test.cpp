//===- tests/introspect_test.cpp - Pipeline introspection tests ----------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Covers the introspection surface: the optimization remarks engine, the
/// per-stage snapshot sink (including that every snapshot re-parses with
/// the matching parser), and the placement floorplan renderings.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "core/Session.h"
#include "core/Stats.h"
#include "ir/Parser.h"
#include "obs/Json.h"
#include "obs/Remarks.h"
#include "obs/Snapshots.h"
#include "place/Floorplan.h"
#include "rasm/AsmParser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace reticle;
using obs::Json;

namespace {

constexpr const char *MacSource = R"(
def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
  t0:i8 = mul(a, b) @??;
  t1:i8 = add(t0, c) @??;
  y:i8 = reg[0](t1, en) @??;
}
)";

/// Remarks live in a process-wide stream; every test starts clean.
class Introspect : public ::testing::Test {
protected:
  void SetUp() override { obs::clearRemarks(); }
  void TearDown() override { obs::clearRemarks(); }
};

Result<core::CompileResult> compileMac(core::CompileOptions Options = {}) {
  Result<ir::Function> Fn = ir::parseFunction(MacSource);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  Options.Dev = device::Device::small();
  return core::compile(Fn.value(), Options);
}

std::string readFile(const std::filesystem::path &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Parses a `reticle-remarks-v1` stream: header plus one record per line.
std::vector<Json> parseJsonl(const std::string &Text) {
  std::vector<Json> Records;
  std::istringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (Line.empty())
      continue;
    Result<Json> Doc = Json::parse(Line);
    EXPECT_TRUE(Doc.ok()) << Doc.error() << " in: " << Line;
    if (Doc)
      Records.push_back(Doc.take());
  }
  return Records;
}

} // namespace

#ifndef RETICLE_NO_TELEMETRY

TEST_F(Introspect, RemarksOffByDefault) {
  EXPECT_FALSE(obs::remarksEnabled());
  obs::Remark("isel", "pattern").message("dropped on the floor");
  EXPECT_EQ(obs::remarkCount(), 0u);
  EXPECT_EQ(obs::remarksText(), "");
}

TEST_F(Introspect, RemarkBuilderCommitsOnDestruction) {
  obs::enableRemarks();
  {
    obs::Remark R("isel", "pattern");
    R.instr("t0").message("covered with 'mul'").arg("area", 16);
    EXPECT_EQ(obs::remarkCount(), 0u) << "must not commit before scope exit";
  }
  EXPECT_EQ(obs::remarkCount(), 1u);
  std::string Text = obs::remarksText();
  EXPECT_NE(Text.find("isel:pattern:"), std::string::npos) << Text;
  EXPECT_NE(Text.find("'t0'"), std::string::npos) << Text;
  EXPECT_NE(Text.find("covered with 'mul'"), std::string::npos) << Text;
  EXPECT_NE(Text.find("area=16"), std::string::npos) << Text;
}

TEST_F(Introspect, RemarksJsonlSchema) {
  obs::enableRemarks();
  obs::Remark("place", "bind").instr("y").message("bound").arg("x", 2);
  std::vector<Json> Records = parseJsonl(obs::remarksJsonl("prog.ret"));
  ASSERT_EQ(Records.size(), 2u) << "header plus one record";

  const Json &Header = Records[0];
  ASSERT_TRUE(Header.isObject());
  EXPECT_EQ(Header.find("schema")->asString(), "reticle-remarks-v1");
  EXPECT_EQ(Header.find("program")->asString(), "prog.ret");
  EXPECT_EQ(Header.find("remarks")->asInt(), 1);

  const Json &Record = Records[1];
  EXPECT_EQ(Record.find("stage")->asString(), "place");
  EXPECT_EQ(Record.find("kind")->asString(), "bind");
  EXPECT_EQ(Record.find("instr")->asString(), "y");
  EXPECT_EQ(Record.find("message")->asString(), "bound");
  ASSERT_NE(Record.find("args"), nullptr);
  EXPECT_EQ(Record.find("args")->find("x")->asInt(), 2);
}

TEST_F(Introspect, ClearRemarksDisablesAndDrops) {
  obs::enableRemarks();
  obs::Remark("opt", "dce").message("removed 3");
  ASSERT_EQ(obs::remarkCount(), 1u);
  obs::clearRemarks();
  EXPECT_EQ(obs::remarkCount(), 0u);
  EXPECT_FALSE(obs::remarksEnabled());
}

TEST_F(Introspect, PipelineEmitsRemarksFromEveryStage) {
  obs::enableRemarks();
  Result<core::CompileResult> R = compileMac();
  ASSERT_TRUE(R.ok()) << R.error();

  std::vector<Json> Records = parseJsonl(obs::remarksJsonl("mac"));
  ASSERT_GE(Records.size(), 2u);
  std::set<std::string> Stages;
  for (size_t I = 1; I < Records.size(); ++I)
    Stages.insert(Records[I].find("stage")->asString());
  EXPECT_TRUE(Stages.count("isel")) << obs::remarksText();
  EXPECT_TRUE(Stages.count("cascade")) << obs::remarksText();
  EXPECT_TRUE(Stages.count("place")) << obs::remarksText();
}

TEST_F(Introspect, WriteRemarksFiles) {
  obs::enableRemarks();
  obs::Remark("isel", "pattern").message("covered");
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "reticle_remarks_test";
  std::filesystem::create_directories(Dir);
  std::string TextPath = (Dir / "r.txt").string();
  std::string JsonPath = (Dir / "r.jsonl").string();
  ASSERT_TRUE(obs::writeRemarksText(TextPath).ok());
  ASSERT_TRUE(obs::writeRemarksJsonl(JsonPath, "p.ret").ok());
  EXPECT_NE(readFile(TextPath).find("isel:pattern"), std::string::npos);
  EXPECT_EQ(parseJsonl(readFile(JsonPath)).size(), 2u);
  std::filesystem::remove_all(Dir);
}

#endif // RETICLE_NO_TELEMETRY

TEST_F(Introspect, SnapshotSinkRecordsPipelineStages) {
  obs::SnapshotSink Sink;
  core::CompileOptions Options;
  Options.Snapshots = &Sink;
  Result<core::CompileResult> R = compileMac(Options);
  ASSERT_TRUE(R.ok()) << R.error();

  ASSERT_EQ(Sink.stages().size(), 4u) << "isel, cascade, place, codegen";
  EXPECT_NE(Sink.find("isel"), nullptr);
  EXPECT_NE(Sink.find("cascade"), nullptr);
  EXPECT_NE(Sink.find("place"), nullptr);
  EXPECT_NE(Sink.find("codegen"), nullptr);
  EXPECT_EQ(Sink.find("parse"), nullptr) << "parse is the driver's snapshot";
}

TEST_F(Introspect, SnapshotsRecordedWithCascadeDisabled) {
  obs::SnapshotSink Sink;
  core::CompileOptions Options;
  Options.Cascade = false;
  Options.Snapshots = &Sink;
  ASSERT_TRUE(compileMac(Options).ok());
  // The manifest always lists the same stages, pass enabled or not.
  EXPECT_NE(Sink.find("cascade"), nullptr);
  EXPECT_EQ(Sink.stages().size(), 4u);
}

TEST_F(Introspect, EverySnapshotReparses) {
  obs::SnapshotSink Sink;
  Sink.add("parse", "ir",
           ir::parseFunction(MacSource).value().str());
  core::CompileOptions Options;
  Options.Snapshots = &Sink;
  ASSERT_TRUE(compileMac(Options).ok());

  for (const obs::StageSnapshot &Snap : Sink.stages()) {
    if (Snap.Format == "ir") {
      Result<ir::Function> Fn = ir::parseFunction(Snap.Text);
      EXPECT_TRUE(Fn.ok()) << Snap.Stage << ": " << Fn.error();
    } else if (Snap.Format == "asm") {
      Result<rasm::AsmProgram> Prog = rasm::parseAsmProgram(Snap.Text);
      EXPECT_TRUE(Prog.ok()) << Snap.Stage << ": " << Prog.error();
    } else {
      EXPECT_EQ(Snap.Format, "verilog") << Snap.Stage;
      EXPECT_NE(Snap.Text.find("module"), std::string::npos) << Snap.Stage;
    }
  }
}

TEST_F(Introspect, SnapshotFileNamesAreOrderedAndTyped) {
  obs::StageSnapshot Parse{"parse", "ir", ""};
  obs::StageSnapshot Isel{"isel", "asm", ""};
  obs::StageSnapshot Codegen{"codegen", "verilog", ""};
  EXPECT_EQ(obs::snapshotFileName(Parse, 0), "00-parse.ret");
  EXPECT_EQ(obs::snapshotFileName(Isel, 1), "01-isel.rasm");
  EXPECT_EQ(obs::snapshotFileName(Codegen, 4), "04-codegen.v");
}

TEST_F(Introspect, WriteSnapshotsEmitsManifest) {
  obs::SnapshotSink Sink;
  Sink.add("parse", "ir", "def f() -> () {}\n");
  Sink.add("isel", "asm", "def f() -> () {}\n");
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "reticle_snapshots_test";
  std::filesystem::remove_all(Dir);
  ASSERT_TRUE(obs::writeSnapshots(Sink, Dir.string(), "f.ret").ok());

  EXPECT_EQ(readFile(Dir / "00-parse.ret"), "def f() -> () {}\n");
  Result<Json> Manifest = Json::parse(readFile(Dir / "manifest.json"));
  ASSERT_TRUE(Manifest.ok()) << Manifest.error();
  EXPECT_EQ(Manifest.value().find("schema")->asString(),
            "reticle-snapshots-v1");
  EXPECT_EQ(Manifest.value().find("program")->asString(), "f.ret");
  const Json *Stages = Manifest.value().find("stages");
  ASSERT_NE(Stages, nullptr);
  ASSERT_NE(Stages->find("isel"), nullptr);
  EXPECT_EQ(Stages->find("isel")->find("file")->asString(), "01-isel.rasm");
  EXPECT_EQ(Stages->find("isel")->find("index")->asInt(), 1);
  std::filesystem::remove_all(Dir);
}

TEST_F(Introspect, FloorplanSvgIsWellFormed) {
  Result<core::CompileResult> R = compileMac();
  ASSERT_TRUE(R.ok()) << R.error();
  std::string Svg =
      place::floorplanSvg(R.value().Placed, device::Device::small());
  EXPECT_EQ(Svg.rfind("<svg", 0), 0u) << Svg.substr(0, 80);
  EXPECT_NE(Svg.find("</svg>"), std::string::npos);
  // The placed instruction appears as a labeled cell with a tooltip.
  EXPECT_NE(Svg.find(">y</text>"), std::string::npos) << Svg;
  EXPECT_NE(Svg.find("<title>"), std::string::npos);
}

TEST_F(Introspect, FloorplanAsciiShowsPlacement) {
  Result<core::CompileResult> R = compileMac();
  ASSERT_TRUE(R.ok()) << R.error();
  std::string Plan =
      place::floorplanAscii(R.value().Placed, device::Device::small());
  EXPECT_EQ(Plan.rfind("floorplan: mac on small", 0), 0u) << Plan;
  EXPECT_NE(Plan.find('#'), std::string::npos) << Plan;
  EXPECT_NE(Plan.find("y = muladdreg"), std::string::npos) << Plan;
}

TEST_F(Introspect, FloorplanHandlesEmptyProgram) {
  rasm::AsmProgram Empty;
  std::string Svg = place::floorplanSvg(Empty, device::Device::tiny());
  EXPECT_NE(Svg.find("</svg>"), std::string::npos);
  std::string Plan = place::floorplanAscii(Empty, device::Device::tiny());
  EXPECT_EQ(Plan.rfind("floorplan:", 0), 0u) << Plan;
}

TEST_F(Introspect, FloorplanTimelineRendersOneFramePerProbe) {
  Result<core::CompileResult> R = compileMac();
  ASSERT_TRUE(R.ok()) << R.error();
  ASSERT_FALSE(R.value().PlaceStats.Timeline.empty());
  std::string Svg = place::floorplanTimelineSvg(
      R.value().Placed, device::Device::small(), R.value().PlaceStats);
  EXPECT_EQ(Svg.rfind("<svg", 0), 0u) << Svg.substr(0, 80);
  EXPECT_NE(Svg.find("</svg>"), std::string::npos);
  EXPECT_NE(Svg.find("shrink timeline: mac on small"), std::string::npos);
  size_t Frames = 0;
  for (size_t Pos = Svg.find("<g class=\"frame\"");
       Pos != std::string::npos;
       Pos = Svg.find("<g class=\"frame\"", Pos + 1))
    ++Frames;
  EXPECT_EQ(Frames, R.value().PlaceStats.Timeline.size());
  // The initial frame's caption plus at least one probe outcome.
  EXPECT_NE(Svg.find("probe 0: initial sat"), std::string::npos) << Svg;
  EXPECT_NE(Svg.find("conflict(s)"), std::string::npos);
}

TEST_F(Introspect, FloorplanTimelineHandlesEmptyTimeline) {
  rasm::AsmProgram Empty;
  place::PlacementStats Stats;
  std::string Svg = place::floorplanTimelineSvg(Empty, device::Device::tiny(),
                                                Stats);
  EXPECT_EQ(Svg.rfind("<svg", 0), 0u);
  EXPECT_NE(Svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(Svg.find("<g class=\"frame\""), std::string::npos);
}

TEST_F(Introspect, StatsJsonCarriesTheSatProfile) {
  Result<core::CompileResult> R = compileMac();
  ASSERT_TRUE(R.ok()) << R.error();
  Json Doc = core::statsJson(R.value(), "mac");
  const Json *Sat = Doc.find("sat");
  ASSERT_NE(Sat, nullptr);
  ASSERT_TRUE(Sat->isObject());
  const Json *Solves = Sat->find("solves");
  ASSERT_NE(Solves, nullptr);
  EXPECT_GE(Solves->asInt(), 1);
  const Json *Lbd = Sat->find("lbd_histogram");
  ASSERT_NE(Lbd, nullptr);
  EXPECT_EQ(Lbd->size(), 8u);
  const Json *Probes = Sat->find("shrink_probes");
  ASSERT_NE(Probes, nullptr);
  EXPECT_EQ(Probes->size(), R.value().PlaceStats.Timeline.size());
  const Json *Core = Sat->find("core");
  ASSERT_NE(Core, nullptr);
  EXPECT_EQ(Core->size(), 0u); // the compile succeeded
}

TEST_F(Introspect, DisabledPassIsSkippedButStillSnapshots) {
  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  Options.DisabledPasses.push_back("cascade");
  core::CompileSession Session;
  Session.captureSnapshots();
  Result<core::CompileResult> R = core::compileSource(
      std::string(MacSource), "mac", Options, Session);
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().CascadeStats.Chains, 0u);
  EXPECT_EQ(R.value().CascadeStats.Rewritten, 0u);
  // The stage list stays stable: the disabled pass still snapshots.
  EXPECT_NE(Session.snapshots().find("cascade"), nullptr);
}
