//===- tests/wave_test.cpp - Waveform observability tests ----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// The waveform layer end to end: the Trace convenience API the engines
/// replay, the WaveRecorder's change detection and counters, the VCD and
/// reticle-wave-v1 writers (including the abort-flush contract), the
/// input-trace parser, and both engines driving a sink — with the
/// interpreter and the gate-level simulator agreeing on every shared port
/// signal, the property `json_check wave_diff` gates on in CI.
///
//===----------------------------------------------------------------------===//

#include "interp/Wave.h"

#include "codegen/NetlistSim.h"
#include "core/Compiler.h"
#include "core/Stats.h"
#include "interp/Interp.h"
#include "interp/TraceIo.h"
#include "ir/Parser.h"
#include "obs/Json.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace reticle;
using interp::Trace;
using interp::Value;
using obs::Json;
using sim::WaveCapture;
using sim::WaveRecorder;
using sim::WaveSignal;

namespace {

const char *MacSource = R"(
  def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
    t0:i8 = mul(a, b) @??;
    t1:i8 = add(t0, c) @??;
    y:i8 = reg[0](t1, en) @??;
  }
)";

ir::Function parseOk(const char *Source) {
  Result<ir::Function> Fn = ir::parseFunction(Source);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  return Fn.take();
}

Trace macTrace() {
  Trace T;
  ir::Type I8 = ir::Type::makeInt(8);
  ir::Type B = ir::Type::makeBool();
  for (int C = 0; C < 4; ++C) {
    interp::Step &S = T.appendStep();
    S["a"] = Value::splat(I8, C + 1);
    S["b"] = Value::splat(I8, 2 * C - 1);
    S["c"] = Value::splat(I8, -C);
    S["en"] = Value::makeBool(C != 2);
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Trace convenience API
//===----------------------------------------------------------------------===//

TEST(TraceApi, SetGrowsTheTrace) {
  Trace T;
  ir::Type B = ir::Type::makeBool();
  T.set(3, "a", Value::makeBool(true));
  EXPECT_EQ(T.size(), 4u);
  ASSERT_NE(T.get(3, "a"), nullptr);
  EXPECT_EQ(T.get(3, "a")->toBits(), std::vector<bool>{true});
  // The grown-over cycles exist but hold nothing.
  EXPECT_EQ(T.get(1, "a"), nullptr);
}

TEST(TraceApi, GetMissingNameAndCycleReturnsNull) {
  Trace T;
  T.set(0, "a", Value::makeBool(false));
  EXPECT_EQ(T.get(0, "b"), nullptr);
  EXPECT_EQ(T.get(7, "a"), nullptr);
}

TEST(TraceApi, AppendStepFillsInPlace) {
  Trace T;
  interp::Step &S = T.appendStep();
  S["x"] = Value::makeBool(true);
  EXPECT_EQ(T.size(), 1u);
  ASSERT_NE(T.get(0, "x"), nullptr);
}

//===----------------------------------------------------------------------===//
// bitsToString
//===----------------------------------------------------------------------===//

TEST(WaveBits, RendersMsbFirst) {
  // LSB-first {1,0,0,1} is binary 1001.
  EXPECT_EQ(sim::bitsToString({true, false, false, true}), "1001");
  EXPECT_EQ(sim::bitsToString({true}), "1");
  EXPECT_EQ(sim::bitsToString({}), "");
}

//===----------------------------------------------------------------------===//
// WaveRecorder: change detection, width normalization, counters
//===----------------------------------------------------------------------===//

TEST(WaveRecorder, DetectsChangesAndCountsToggles) {
  obs::Telemetry Telem;
  obs::RemarkStream Rem;
  obs::Context Ctx{&Telem, &Rem};
  WaveCapture Cap;
  WaveRecorder Rec(&Cap, Ctx);
  EXPECT_TRUE(Rec.active());
  ASSERT_TRUE(Rec.begin({WaveSignal("a", 4), WaveSignal("b", 1)}).ok());

  Rec.cycle(0);
  Rec.record(0, {true, false, true, false}); // 0101
  Rec.record(1, {true});
  Rec.cycle(1);
  Rec.record(0, {true, false, true, false}); // unchanged
  Rec.record(1, {false});                    // flipped
  ASSERT_TRUE(Rec.finish(false).ok());

  ASSERT_EQ(Cap.cycles(), 2u);
  // First sight is always marked changed; repeats are not.
  EXPECT_TRUE(Cap.eventsByCycle()[0][0].Changed);
  EXPECT_TRUE(Cap.eventsByCycle()[0][1].Changed);
  EXPECT_FALSE(Cap.eventsByCycle()[1][0].Changed);
  EXPECT_TRUE(Cap.eventsByCycle()[1][1].Changed);
  EXPECT_TRUE(Cap.finished());
  EXPECT_FALSE(Cap.aborted());

#ifndef RETICLE_NO_TELEMETRY
  EXPECT_EQ(Ctx.counter("sim.signals").load(), 2u);
  EXPECT_EQ(Ctx.counter("sim.events").load(), 4u);
  // First sight toggles the full width (4 + 1); cycle 1 flips one bit.
  EXPECT_EQ(Ctx.counter("sim.toggles").load(), 6u);
#endif
}

TEST(WaveRecorder, NormalizesBitsToDeclaredWidth) {
  WaveCapture Cap;
  WaveRecorder Rec(&Cap, obs::defaultContext());
  ASSERT_TRUE(Rec.begin({WaveSignal("w", 4)}).ok());
  Rec.cycle(0);
  Rec.record(0, {true}); // short: padded to 4 bits
  ASSERT_TRUE(Rec.finish(false).ok());
  const std::vector<bool> *V = Cap.valueAt(0, "w");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->size(), 4u);
  EXPECT_EQ(sim::bitsToString(*V), "0001");
}

TEST(WaveRecorder, NullSinkIsInert) {
  obs::Telemetry Telem;
  obs::RemarkStream Rem;
  obs::Context Ctx{&Telem, &Rem};
  WaveRecorder Rec(nullptr, Ctx);
  EXPECT_FALSE(Rec.active());
  ASSERT_TRUE(Rec.begin({WaveSignal("a", 1)}).ok());
  Rec.cycle(0);
  Rec.record(0, {true});
  ASSERT_TRUE(Rec.finish(false).ok());
  EXPECT_EQ(Ctx.counter("sim.events").load(), 0u);
  EXPECT_EQ(Ctx.counter("sim.signals").load(), 0u);
}

//===----------------------------------------------------------------------===//
// replay: merging captures under per-engine prefixes
//===----------------------------------------------------------------------===//

TEST(WaveReplay, MergesSourcesWithPrefixes) {
  WaveCapture A, B;
  ASSERT_TRUE(A.begin({WaveSignal("y", 2)}).ok());
  A.beginCycle(0);
  A.value(0, {true, false}, true);
  ASSERT_TRUE(A.finish(false).ok());
  ASSERT_TRUE(B.begin({WaveSignal("y", 2)}).ok());
  B.beginCycle(0);
  B.value(0, {true, false}, true);
  B.beginCycle(1);
  B.value(0, {false, true}, true);
  ASSERT_TRUE(B.finish(true).ok()); // one aborted source

  WaveCapture Merged;
  ASSERT_TRUE(sim::replay({{&A, "interp"}, {&B, "netlist"}}, Merged).ok());
  ASSERT_EQ(Merged.signals().size(), 2u);
  EXPECT_EQ(Merged.signals()[0].Name, "interp.y");
  EXPECT_EQ(Merged.signals()[1].Name, "netlist.y");
  // Cycle 1 only exists in B; the merge spans the longer run and carries
  // the abort flag forward.
  EXPECT_EQ(Merged.cycles(), 2u);
  EXPECT_TRUE(Merged.aborted());
  ASSERT_NE(Merged.valueAt(1, "netlist.y"), nullptr);
  EXPECT_EQ(Merged.valueAt(1, "interp.y"), nullptr);
}

#ifndef RETICLE_NO_TELEMETRY

//===----------------------------------------------------------------------===//
// VcdWriter
//===----------------------------------------------------------------------===//

/// Checks the dump section line by line: after $enddefinitions every line
/// must be a timestamp, a scalar change, a vector change, or one of the
/// $dumpvars / $end / $comment keywords. Returns the first bad line.
std::string checkVcdShape(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  bool InDump = false;
  while (std::getline(In, Line)) {
    if (Line.find("$enddefinitions") != std::string::npos) {
      InDump = true;
      continue;
    }
    if (!InDump || Line.empty())
      continue;
    char C = Line[0];
    if (C == '#' || C == '0' || C == '1' || C == 'b' || C == 'x' ||
        C == '$')
      continue;
    return Line;
  }
  return {};
}

TEST(VcdWriter, IdCodesAreCompactAndUnique) {
  EXPECT_EQ(sim::VcdWriter::idCode(0), "!");
  EXPECT_EQ(sim::VcdWriter::idCode(93), "~");
  EXPECT_EQ(sim::VcdWriter::idCode(94).size(), 2u);
  std::set<std::string> Codes;
  for (unsigned I = 0; I < 300; ++I)
    Codes.insert(sim::VcdWriter::idCode(I));
  EXPECT_EQ(Codes.size(), 300u);
}

TEST(VcdWriter, HeaderDumpAndSuppression) {
  sim::VcdWriter W("top");
  ASSERT_TRUE(W.begin({WaveSignal("s", 1), WaveSignal("v", 8)}).ok());
  W.beginCycle(0);
  W.value(0, {true}, true);
  W.value(1, std::vector<bool>(8, false), true);
  W.beginCycle(1);
  W.value(0, {true}, false); // suppressed
  W.value(1, {true, false, false, false, false, false, false, false}, true);
  ASSERT_TRUE(W.finish(false).ok());
  const std::string &T = W.text();

  EXPECT_NE(T.find("$scope module top $end"), std::string::npos);
  // Scalars carry no range; vectors do.
  EXPECT_NE(T.find("$var wire 1 ! s $end"), std::string::npos);
  EXPECT_NE(T.find("$var wire 8 \" v [7:0] $end"), std::string::npos);
  // Everything dumps as x before its first value.
  size_t Dump = T.find("$dumpvars");
  ASSERT_NE(Dump, std::string::npos);
  EXPECT_NE(T.find("x!", Dump), std::string::npos);
  EXPECT_NE(T.find("bx \"", Dump), std::string::npos);
  // Cycle 0 reports both signals; cycle 1 suppresses the unchanged scalar.
  size_t C0 = T.find("#0");
  size_t C1 = T.find("#1", C0 + 1);
  ASSERT_NE(C1, std::string::npos);
  EXPECT_NE(T.find("1!", C0), std::string::npos);
  EXPECT_LT(T.find("1!", C0), C1);
  EXPECT_EQ(T.find("1!", C1), std::string::npos);
  EXPECT_NE(T.find("b00000001 \"", C1), std::string::npos);
  // A closing timestamp follows the last cycle.
  EXPECT_NE(T.find("#2", C1), std::string::npos);
  EXPECT_EQ(checkVcdShape(T), "");
}

TEST(VcdWriter, DottedNamesBecomeScopes) {
  sim::VcdWriter W("mac");
  ASSERT_TRUE(W.begin({WaveSignal("interp.y", 8), WaveSignal("netlist.y", 8),
                       WaveSignal("clk", 1)})
                  .ok());
  ASSERT_TRUE(W.finish(false).ok());
  const std::string &T = W.text();
  EXPECT_NE(T.find("$scope module interp $end"), std::string::npos);
  EXPECT_NE(T.find("$scope module netlist $end"), std::string::npos);
  // The leaf names drop the prefix inside their scope.
  EXPECT_EQ(T.find("interp.y [7:0]"), std::string::npos);
}

TEST(VcdWriter, AbortStillFlushesWellFormedOutput) {
  sim::VcdWriter W("t");
  ASSERT_TRUE(W.begin({WaveSignal("a", 1)}).ok());
  W.beginCycle(0);
  W.value(0, {true}, true);
  ASSERT_TRUE(W.finish(true).ok());
  EXPECT_NE(W.text().find("$comment aborted $end"), std::string::npos);
  EXPECT_EQ(checkVcdShape(W.text()), "");
}

//===----------------------------------------------------------------------===//
// WaveJsonWriter: reticle-wave-v1
//===----------------------------------------------------------------------===//

TEST(WaveJsonWriter, EveryLineParsesAndNothingIsSuppressed) {
  sim::WaveJsonWriter W("mac", "interp");
  ASSERT_TRUE(W.begin({WaveSignal("a", 4, WaveSignal::Kind::Input),
                       WaveSignal("y", 4, WaveSignal::Kind::Output)})
                  .ok());
  for (uint64_t C = 0; C < 3; ++C) {
    W.beginCycle(C);
    W.value(0, {true, false, false, false}, C == 0);
    W.value(1, {false, true, false, false}, C == 0);
  }
  ASSERT_TRUE(W.finish(true).ok());

  std::istringstream In(W.text());
  std::string Line;
  size_t Lines = 0, Records = 0;
  Json Header, Footer;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    Result<Json> Doc = Json::parse(Line);
    ASSERT_TRUE(Doc.ok()) << Line << ": " << Doc.error();
    ++Lines;
    if (Doc.value().find("schema"))
      Header = Doc.take();
    else if (Doc.value().find("signal"))
      ++Records;
    else
      Footer = Doc.take();
  }
  // Header + footer + one record per signal per cycle, unsuppressed.
  EXPECT_EQ(Lines, 2u + 3u * 2u);
  EXPECT_EQ(Records, 6u);
  ASSERT_TRUE(Header.isObject());
  EXPECT_EQ(Header.find("schema")->asString(), "reticle-wave-v1");
  EXPECT_EQ(Header.find("engine")->asString(), "interp");
  ASSERT_EQ(Header.find("signals")->size(), 2u);
  EXPECT_EQ(Header.find("signals")->items()[0].find("kind")->asString(),
            "input");
  ASSERT_TRUE(Footer.isObject());
  EXPECT_EQ(Footer.find("cycles")->asInt(), 3);
  EXPECT_TRUE(Footer.find("aborted")->asBool());
}

#endif // RETICLE_NO_TELEMETRY

//===----------------------------------------------------------------------===//
// Input-trace parsing (reticle-input-trace-v1)
//===----------------------------------------------------------------------===//

TEST(TraceIo, ParsesBoolIntAndVectorPorts) {
  ir::Function Fn = parseOk(R"(
    def f(a:i8, en:bool, v:i8<2>) -> (y:i8) {
      y:i8 = add(a, a) @??;
    }
  )");
  Result<Trace> T = sim::parseInputTrace(R"({
    "schema": "reticle-input-trace-v1",
    "cycles": [
      {"a": -3, "en": true, "v": [1, 2]},
      {"a": 7, "en": 0, "v": [-1, -2]}
    ]
  })",
                                         Fn);
  ASSERT_TRUE(T.ok()) << T.error();
  ASSERT_EQ(T.value().size(), 2u);
  EXPECT_EQ(T.value().get(0, "a")->str(), Value::splat(ir::Type::makeInt(8), -3).str());
  EXPECT_EQ(T.value().get(1, "en")->str(), Value::makeBool(false).str());
  EXPECT_EQ(T.value().get(0, "v")->toBits(),
            Value::fromLanes(ir::Type::makeInt(8, 2), {1, 2}).toBits());
}

TEST(TraceIo, RejectsBadDocuments) {
  ir::Function Fn = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      y:i8 = add(a, a) @??;
    }
  )");
  auto Err = [&](const char *Text) {
    Result<Trace> T = sim::parseInputTrace(Text, Fn);
    EXPECT_FALSE(T.ok()) << Text;
    return T.ok() ? std::string() : T.error();
  };
  EXPECT_NE(Err(R"({"schema":"nope","cycles":[]})").find("schema"),
            std::string::npos);
  EXPECT_NE(Err(R"({"schema":"reticle-input-trace-v1","cycles":[{}]})")
                .find("missing"),
            std::string::npos);
  EXPECT_NE(Err(R"({"schema":"reticle-input-trace-v1",
                    "cycles":[{"a":1,"zz":2}]})")
                .find("unknown input"),
            std::string::npos);
  EXPECT_FALSE(Err("not json").empty());
}

// The four error paths the driver's diagnostics depend on must stay
// distinguishable: malformed JSON, a missing input column, a lane-count
// mismatch, and a non-monotone cycle record each name their own cause.
TEST(TraceIo, DistinctErrorPaths) {
  ir::Function Fn = parseOk(R"(
    def f(a:i8, v:i8<3>) -> (y:i8) {
      y:i8 = add(a, a) @??;
    }
  )");
  auto Err = [&](const std::string &Text) {
    Result<Trace> T = sim::parseInputTrace(Text, Fn);
    EXPECT_FALSE(T.ok()) << Text;
    return T.ok() ? std::string() : T.error();
  };

  // 1. Malformed JSON: the parser's own message, prefixed by the layer.
  std::string Malformed = Err(R"({"schema": "reticle-input-trace-v1",)");
  EXPECT_NE(Malformed.find("input trace"), std::string::npos) << Malformed;

  // 2. Missing input column names the cycle and the port.
  std::string Missing = Err(
      R"({"schema":"reticle-input-trace-v1",
          "cycles":[{"a":1,"v":[1,2,3]},{"a":2}]})");
  EXPECT_NE(Missing.find("cycle 1"), std::string::npos) << Missing;
  EXPECT_NE(Missing.find("'v' missing"), std::string::npos) << Missing;

  // 3. Lane-count mismatch reports expected vs got.
  std::string Lanes = Err(
      R"({"schema":"reticle-input-trace-v1",
          "cycles":[{"a":1,"v":[1,2]}]})");
  EXPECT_NE(Lanes.find("expected 3 lanes, got 2"), std::string::npos)
      << Lanes;

  // 4. Non-monotone cycle record: the reserved "cycle" self-check key
  // disagrees with the record's index.
  std::string NonMonotone = Err(
      R"({"schema":"reticle-input-trace-v1",
          "cycles":[{"cycle":0,"a":1,"v":[1,2,3]},
                    {"cycle":2,"a":2,"v":[1,2,3]}]})");
  EXPECT_NE(NonMonotone.find("non-monotone cycle"), std::string::npos)
      << NonMonotone;
  EXPECT_NE(NonMonotone.find("'cycle' is 2, expected 1"), std::string::npos)
      << NonMonotone;

  // The messages are pairwise distinct.
  EXPECT_NE(Malformed, Missing);
  EXPECT_NE(Missing, Lanes);
  EXPECT_NE(Lanes, NonMonotone);
}

TEST(TraceIo, CycleSelfCheckAcceptsInOrderRecords) {
  ir::Function Fn = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      y:i8 = add(a, a) @??;
    }
  )");
  Result<Trace> T = sim::parseInputTrace(
      R"({"schema":"reticle-input-trace-v1",
          "cycles":[{"cycle":0,"a":1},{"cycle":1,"a":2}]})",
      Fn);
  ASSERT_TRUE(T.ok()) << T.error();
  EXPECT_EQ(T.value().size(), 2u);
  // The reserved key is a self-check, not an input: it never lands in
  // the trace.
  EXPECT_EQ(T.value().get(0, "cycle"), nullptr);
}

TEST(TraceIo, CycleKeyNotReservedWhenAPortClaimsIt) {
  // A function whose input is literally named "cycle" keeps the key as a
  // normal column; the self-check steps aside.
  ir::Function Fn = parseOk(R"(
    def f(cycle:i8) -> (y:i8) {
      y:i8 = add(cycle, cycle) @??;
    }
  )");
  Result<Trace> T = sim::parseInputTrace(
      R"({"schema":"reticle-input-trace-v1",
          "cycles":[{"cycle":42}]})",
      Fn);
  ASSERT_TRUE(T.ok()) << T.error();
  ASSERT_NE(T.value().get(0, "cycle"), nullptr);
  EXPECT_EQ(T.value().get(0, "cycle")->str(),
            Value::splat(ir::Type::makeInt(8), 42).str());
}

//===----------------------------------------------------------------------===//
// Engines driving sinks
//===----------------------------------------------------------------------===//

TEST(WaveEngines, InterpreterStreamsPortsAndInternals) {
  ir::Function Fn = parseOk(MacSource);
  Trace In = macTrace();
  WaveCapture Cap;
  Result<Trace> Out = interp::interpret(Fn, In, &Cap, obs::defaultContext());
  ASSERT_TRUE(Out.ok()) << Out.error();

  ASSERT_TRUE(Cap.finished());
  EXPECT_FALSE(Cap.aborted());
  EXPECT_EQ(Cap.cycles(), In.size());
  std::map<std::string, WaveSignal::Kind> Kinds;
  for (const WaveSignal &S : Cap.signals())
    Kinds[S.Name] = S.SigKind;
  EXPECT_EQ(Kinds.at("a"), WaveSignal::Kind::Input);
  EXPECT_EQ(Kinds.at("en"), WaveSignal::Kind::Input);
  EXPECT_EQ(Kinds.at("y"), WaveSignal::Kind::Output);
  EXPECT_EQ(Kinds.at("t0"), WaveSignal::Kind::Internal);
  EXPECT_EQ(Kinds.at("t1"), WaveSignal::Kind::Internal);
  // The streamed output values are exactly the returned trace's.
  for (size_t C = 0; C < In.size(); ++C) {
    const std::vector<bool> *V = Cap.valueAt(C, "y");
    ASSERT_NE(V, nullptr) << C;
    EXPECT_EQ(*V, Out.value().get(C, "y")->toBits()) << C;
  }
}

TEST(WaveEngines, InterpreterAbortFlushesTruncatedCapture) {
  ir::Function Fn = parseOk(MacSource);
  Trace In = macTrace();
  In.steps()[2].erase("b"); // starve cycle 2
  WaveCapture Cap;
  Result<Trace> Out = interp::interpret(Fn, In, &Cap, obs::defaultContext());
  ASSERT_FALSE(Out.ok());
  EXPECT_NE(Out.error().find("cycle 2"), std::string::npos);
  // The sink was finished (aborted) and holds the completed cycles.
  EXPECT_TRUE(Cap.finished());
  EXPECT_TRUE(Cap.aborted());
  EXPECT_EQ(Cap.cycles(), 2u);
  ASSERT_NE(Cap.valueAt(1, "y"), nullptr);
#ifndef RETICLE_NO_TELEMETRY
  // Replaying the truncated capture still renders well-formed VCD.
  sim::VcdWriter W("mac");
  ASSERT_TRUE(sim::replay({{&Cap, ""}}, W).ok());
  EXPECT_NE(W.text().find("$comment aborted $end"), std::string::npos);
  EXPECT_EQ(checkVcdShape(W.text()), "");
#endif
}

TEST(WaveEngines, NetlistAndInterpreterAgreeOnSharedPorts) {
  ir::Function Fn = parseOk(MacSource);
  Trace In = macTrace();

  WaveCapture InterpCap;
  Result<Trace> Ref = interp::interpret(Fn, In, &InterpCap, obs::defaultContext());
  ASSERT_TRUE(Ref.ok()) << Ref.error();

  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  Result<core::CompileResult> R = core::compile(Fn, Options);
  ASSERT_TRUE(R.ok()) << R.error();
  WaveCapture NetCap;
  Result<Trace> Got = codegen::simulate(R.value().Verilog, In, &NetCap,
                                        obs::defaultContext());
  ASSERT_TRUE(Got.ok()) << Got.error();

  ASSERT_EQ(NetCap.cycles(), InterpCap.cycles());
  // The wave_diff property: every port signal both engines declare agrees
  // bit for bit, every cycle.
  std::set<std::string> NetPorts;
  for (const WaveSignal &S : NetCap.signals())
    if (S.SigKind != WaveSignal::Kind::Internal)
      NetPorts.insert(S.Name);
  size_t Shared = 0;
  for (const WaveSignal &S : InterpCap.signals()) {
    if (S.SigKind == WaveSignal::Kind::Internal || !NetPorts.count(S.Name))
      continue;
    ++Shared;
    for (uint64_t C = 0; C < InterpCap.cycles(); ++C) {
      const std::vector<bool> *A = InterpCap.valueAt(C, S.Name);
      const std::vector<bool> *B = NetCap.valueAt(C, S.Name);
      ASSERT_NE(A, nullptr) << S.Name << " cycle " << C;
      ASSERT_NE(B, nullptr) << S.Name << " cycle " << C;
      EXPECT_EQ(sim::bitsToString(*A), sim::bitsToString(*B))
          << S.Name << " cycle " << C;
    }
  }
  EXPECT_EQ(Shared, 5u); // a, b, c, en, y
}

//===----------------------------------------------------------------------===//
// The stats document's sim section
//===----------------------------------------------------------------------===//

TEST(WaveStats, SimSectionReflectsTheRun) {
  ir::Function Fn = parseOk(MacSource);
  Trace In = macTrace();

  obs::Telemetry Telem;
  obs::RemarkStream Rem;
  obs::Coverage Cov;
  obs::Context Ctx{&Telem, &Rem, &Cov};
  WaveCapture Cap;
  ASSERT_TRUE(interp::interpret(Fn, In, &Cap, Ctx).ok());

  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  Result<core::CompileResult> R = core::compile(Fn, Options);
  ASSERT_TRUE(R.ok()) << R.error();

  Json Doc = core::statsJson(R.value(), "mac.ret", Ctx);
  const Json *Sim = Doc.find("sim");
  ASSERT_NE(Sim, nullptr);
  // The section always exists with the full shape.
  ASSERT_NE(Sim->find("cycles"), nullptr);
  ASSERT_NE(Sim->find("events"), nullptr);
  ASSERT_NE(Sim->find("toggles"), nullptr);
  ASSERT_NE(Sim->find("signals"), nullptr);
  ASSERT_NE(Sim->find("interp"), nullptr);
  ASSERT_NE(Sim->find("netlist"), nullptr);
#ifndef RETICLE_NO_TELEMETRY
  EXPECT_EQ(Sim->find("cycles")->asInt(), 4);
  EXPECT_EQ(Sim->find("interp")->find("cycles")->asInt(), 4);
  EXPECT_GT(Sim->find("interp")->find("evals")->asInt(), 0);
  EXPECT_EQ(Sim->find("signals")->asInt(), 7); // a b c en t0 t1 y
  EXPECT_GT(Sim->find("events")->asInt(), 0);
#else
  EXPECT_EQ(Sim->find("cycles")->asInt(), 0);
#endif
}

} // namespace
