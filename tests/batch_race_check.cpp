//===- tests/batch_race_check.cpp - Concurrency determinism check ---------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// A plain-main (no gtest) check that two or more compilations of
/// different functions can run concurrently in one process and produce
/// byte-identical artifacts to sequential runs. Built without a test
/// framework so it can also be compiled under ThreadSanitizer, where it
/// serves as the data-race detector for the batch-compile path (see
/// scripts/check.sh).
///
/// Exit code 0 on success, 1 on any mismatch or compile failure.
///
//===----------------------------------------------------------------------===//

#include "core/Batch.h"
#include "core/Compiler.h"
#include "core/Session.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace reticle;

namespace {

const char *Programs[][2] = {
    {"mac.ret", R"(
def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
  t0:i8 = mul(a, b) @??;
  t1:i8 = add(t0, c) @??;
  y:i8 = reg[0](t1, en) @??;
}
)"},
    {"dot3.ret", R"(
def dot3(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, in:i8) -> (t2:i8) {
  m0:i8 = mul(a0, b0) @??;
  t0:i8 = add(m0, in) @??;
  m1:i8 = mul(a1, b1) @??;
  t1:i8 = add(m1, t0) @??;
  m2:i8 = mul(a2, b2) @??;
  t2:i8 = add(m2, t1) @??;
}
)"},
    {"adds.ret", R"(
def scalar_adds(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, a3:i8, b3:i8)
    -> (y0:i8, y1:i8, y2:i8, y3:i8) {
  y0:i8 = add(a0, b0) @??;
  y1:i8 = add(a1, b1) @??;
  y2:i8 = add(a2, b2) @??;
  y3:i8 = add(a3, b3) @??;
}
)"},
    {"logic.ret", R"(
def logic(a:i8, b:i8, c:i8) -> (y:i8) {
  t0:i8 = and(a, b) @??;
  t1:i8 = xor(t0, c) @??;
  y:i8 = or(t1, a) @??;
}
)"},
};

int fail(const char *What) {
  std::fprintf(stderr, "batch_race_check: FAIL: %s\n", What);
  return 1;
}

} // namespace

int main() {
  std::vector<core::BatchInput> Inputs;
  for (const auto &P : Programs)
    Inputs.push_back({P[0], P[1]});

  core::BatchOptions Options;
  Options.Options.Dev = device::Device::small();
  // Exercise every per-session sink while the workers run, so the race
  // check covers telemetry, remarks, and snapshots, not just the
  // pipeline's data path.
  Options.CaptureSnapshots = true;
  Options.EnableRemarks = true;
  Options.EnableTracing = true;

  Options.Jobs = 1;
  std::vector<core::BatchItem> Sequential =
      core::compileBatch(Inputs, Options);

  Options.Jobs = 4;
  std::vector<core::BatchItem> Concurrent =
      core::compileBatch(Inputs, Options);

  if (Sequential.size() != Inputs.size() ||
      Concurrent.size() != Inputs.size())
    return fail("wrong item count");

  for (size_t I = 0; I < Inputs.size(); ++I) {
    if (!Sequential[I].ok()) {
      std::fprintf(stderr, "batch_race_check: %s (sequential): %s\n",
                   Sequential[I].Name.c_str(),
                   Sequential[I].Outcome->error().c_str());
      return fail("sequential compile failed");
    }
    if (!Concurrent[I].ok()) {
      std::fprintf(stderr, "batch_race_check: %s (concurrent): %s\n",
                   Concurrent[I].Name.c_str(),
                   Concurrent[I].Outcome->error().c_str());
      return fail("concurrent compile failed");
    }
    const core::CompileResult &S = Sequential[I].Outcome->value();
    const core::CompileResult &C = Concurrent[I].Outcome->value();
    if (S.Asm.str() != C.Asm.str())
      return fail("assembly differs between sequential and concurrent");
    if (S.Placed.str() != C.Placed.str())
      return fail("placement differs between sequential and concurrent");
    if (S.Verilog.str() != C.Verilog.str())
      return fail("Verilog differs between sequential and concurrent");
    if (Sequential[I].Session->snapshots().stages().size() !=
        Concurrent[I].Session->snapshots().stages().size())
      return fail("snapshot stage lists differ");
  }

  std::printf("batch_race_check: ok (%zu programs, sequential == "
              "concurrent)\n",
              Inputs.size());
  return 0;
}
