//===- tests/netlistsim_test.cpp - Gate-level translation validation -----------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// The strongest correctness check in the project: compile programs all
/// the way to structural Verilog, execute the resulting netlist with the
/// gate-level simulator (LUT INITs, CARRY8 chains, FDRE, DSP48E2), and
/// compare every output bit of every cycle against the reference
/// interpreter of Section 6.2.
///
//===----------------------------------------------------------------------===//

#include "codegen/NetlistSim.h"

#include "core/Compiler.h"
#include "interp/Interp.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace reticle;
using device::Device;
using interp::Trace;
using interp::Value;
using ir::Type;

namespace {

ir::Function parseOk(const char *Source) {
  Result<ir::Function> Fn = ir::parseFunction(Source);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  return Fn.take();
}

/// Compiles \p Fn, simulates the generated Verilog over \p Input, and
/// compares the flattened bits of every output against the interpreter.
void checkGateLevel(const ir::Function &Fn, const Trace &Input) {
  Result<Trace> Expected = interp::interpret(Fn, Input);
  ASSERT_TRUE(Expected.ok()) << Expected.error();

  core::CompileOptions Options;
  Options.Dev = Device::small();
  Result<core::CompileResult> R = core::compile(Fn, Options);
  ASSERT_TRUE(R.ok()) << R.error();

  Result<Trace> Got = codegen::simulate(R.value().Verilog, Input);
  ASSERT_TRUE(Got.ok()) << Got.error() << "\n"
                        << R.value().Verilog.str();
  ASSERT_EQ(Got.value().size(), Expected.value().size());
  for (size_t Cycle = 0; Cycle < Expected.value().size(); ++Cycle)
    for (const ir::Port &P : Fn.outputs()) {
      const Value *E = Expected.value().get(Cycle, P.Name);
      const Value *G = Got.value().get(Cycle, P.Name);
      ASSERT_NE(G, nullptr) << P.Name;
      EXPECT_EQ(E->toBits(), G->toBits())
          << "cycle " << Cycle << " output " << P.Name << " (interp "
          << E->str() << ")\n"
          << R.value().Placed.str() << "\n"
          << R.value().Verilog.str();
    }
}

Trace randomTrace(const ir::Function &Fn, size_t Cycles, unsigned Seed) {
  Trace T;
  std::mt19937_64 Rng(Seed);
  std::uniform_int_distribution<int64_t> D(-128, 127);
  for (size_t C = 0; C < Cycles; ++C) {
    interp::Step &S = T.appendStep();
    for (const ir::Port &P : Fn.inputs()) {
      std::vector<int64_t> Lanes;
      for (unsigned L = 0; L < P.Ty.lanes(); ++L)
        Lanes.push_back(D(Rng));
      S[P.Name] = Value::fromLanes(P.Ty, std::move(Lanes));
    }
  }
  return T;
}

} // namespace

TEST(GateLevel, LutBitwiseOps) {
  ir::Function Fn = parseOk(R"(
    def bits(a:i8, b:i8) -> (x:i8, o:i8, n:i8) {
      x:i8 = xor(a, b) @lut;
      o:i8 = or(a, b) @lut;
      n:i8 = not(a) @lut;
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 3, 1));
}

TEST(GateLevel, LutAddSub) {
  ir::Function Fn = parseOk(R"(
    def arith(a:i8, b:i8) -> (s:i8, d:i8) {
      s:i8 = add(a, b) @lut;
      d:i8 = sub(a, b) @lut;
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 4, 2));
}

TEST(GateLevel, WideLutAdd) {
  ir::Function Fn = parseOk(R"(
    def wide(a:i24, b:i24) -> (s:i24) {
      s:i24 = add(a, b) @lut;
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 3, 3));
}

TEST(GateLevel, LutComparisons) {
  ir::Function Fn = parseOk(R"(
    def cmp(a:i8, b:i8) -> (e:bool, ne:bool, l:bool, g:bool, le:bool, ge:bool) {
      e:bool = eq(a, b) @lut;
      ne:bool = neq(a, b) @lut;
      l:bool = lt(a, b) @lut;
      g:bool = gt(a, b) @lut;
      le:bool = le(a, b) @lut;
      ge:bool = ge(a, b) @lut;
    }
  )");
  // Random plus forced-equal patterns.
  Trace T = randomTrace(Fn, 6, 4);
  T.step(5)["b"] = T.step(5)["a"];
  checkGateLevel(Fn, T);
}

TEST(GateLevel, LutMux) {
  ir::Function Fn = parseOk(R"(
    def sel(c:bool, a:i8, b:i8) -> (y:i8) {
      y:i8 = mux(c, a, b) @lut;
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 6, 5));
}

TEST(GateLevel, LutMultiplier) {
  ir::Function Fn = parseOk(R"(
    def m(a:i8, b:i8) -> (y:i8) {
      y:i8 = mul(a, b) @lut;
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 6, 6));
}

TEST(GateLevel, RegisterWithInitAndEnable) {
  ir::Function Fn = parseOk(R"(
    def r(a:i8, en:bool) -> (y:i8) {
      y:i8 = reg[37](a, en) @lut;
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 6, 7));
}

TEST(GateLevel, DspScalarOps) {
  ir::Function Fn = parseOk(R"(
    def d(a:i8, b:i8, c:i8) -> (s:i8, p:i8, f:i8) {
      s:i8 = add(a, b) @dsp;
      p:i8 = mul(a, b) @dsp;
      t0:i8 = mul(a, b) @dsp;
      f:i8 = add(t0, c) @dsp;
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 4, 8));
}

TEST(GateLevel, DspSimdVectorAdd) {
  ir::Function Fn = parseOk(R"(
    def v(a:i8<4>, b:i8<4>) -> (y:i8<4>, z:i8<4>) {
      y:i8<4> = add(a, b) @dsp;
      z:i8<4> = sub(a, b) @dsp;
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 4, 9));
}

TEST(GateLevel, DspRegisteredPipelines) {
  ir::Function Fn = parseOk(R"(
    def pipe(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @dsp;
      t1:i8 = add(t0, c) @dsp;
      y:i8 = reg[5](t1, en) @??;
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 6, 10));
}

TEST(GateLevel, CascadedDotProduct) {
  ir::Function Fn = parseOk(R"(
    def dot(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, in:i8) -> (t2:i8) {
      m0:i8 = mul(a0, b0) @??;
      t0:i8 = add(m0, in) @??;
      m1:i8 = mul(a1, b1) @??;
      t1:i8 = add(m1, t0) @??;
      m2:i8 = mul(a2, b2) @??;
      t2:i8 = add(m2, t1) @??;
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 4, 11));
}

TEST(GateLevel, WireOpsAndConstants) {
  ir::Function Fn = parseOk(R"(
    def w(a:i8, b:i8) -> (y:i8, hi:i8) {
      t0:i8 = sll[2](a);
      t1:i8 = srl[1](b);
      t2:i8 = sra[3](a);
      k:i8 = const[-7];
      s0:i8 = add(t0, t1) @lut;
      s1:i8 = add(t2, k) @lut;
      y:i8 = add(s0, s1) @lut;
      pair:i8<2> = cat(a, b);
      hi:i8 = slice[8](pair);
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 4, 12));
}

TEST(GateLevel, CounterSelfReference) {
  ir::Function Fn = parseOk(R"(
    def counter(en:bool) -> (t3:i8) {
      t1:i8 = const[4];
      t2:i8 = add(t3, t1) @lut;
      t3:i8 = reg[0](t2, en) @??;
    }
  )");
  checkGateLevel(Fn, randomTrace(Fn, 6, 13));
}

class GateLevelRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(GateLevelRandom, RandomProgramsMatchInterpreter) {
  // Random programs over the scalar ops with full LUT/DSP freedom.
  std::mt19937 Rng(GetParam() * 977 + 3);
  ir::Function Fn("gl");
  Type I8 = Type::makeInt(8);
  Type B = Type::makeBool();
  std::vector<std::string> I8Vars = {"a0", "a1"};
  std::vector<std::string> BoolVars = {"en"};
  Fn.addInput("a0", I8);
  Fn.addInput("a1", I8);
  Fn.addInput("en", B);
  auto Pick = [&](std::vector<std::string> &Pool) {
    std::uniform_int_distribution<size_t> D(0, Pool.size() - 1);
    return Pool[D(Rng)];
  };
  std::uniform_int_distribution<int> OpDist(0, 8);
  unsigned N = 3 + GetParam() % 10;
  for (unsigned I = 0; I < N; ++I) {
    std::string Dst = "t" + std::to_string(I);
    switch (OpDist(Rng)) {
    case 0:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Add,
                                      {Pick(I8Vars), Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    case 1:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Sub,
                                      {Pick(I8Vars), Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    case 2:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Mul,
                                      {Pick(I8Vars), Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    case 3:
      Fn.addInstr(ir::Instr::makeComp(Dst, B, ir::CompOp::Lt,
                                      {Pick(I8Vars), Pick(I8Vars)}));
      BoolVars.push_back(Dst);
      break;
    case 4:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Mux,
                                      {Pick(BoolVars), Pick(I8Vars),
                                       Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    case 5:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Reg,
                                      {Pick(I8Vars), Pick(BoolVars)},
                                      {int64_t(GetParam() % 17)}));
      I8Vars.push_back(Dst);
      break;
    case 6:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Xor,
                                      {Pick(I8Vars), Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    case 7:
      Fn.addInstr(ir::Instr::makeWire(Dst, I8, ir::WireOp::Sll, {1},
                                      {Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    default:
      Fn.addInstr(ir::Instr::makeComp(Dst, B, ir::CompOp::And,
                                      {Pick(BoolVars), Pick(BoolVars)}));
      BoolVars.push_back(Dst);
      break;
    }
  }
  Fn.addOutput(I8Vars.back(), I8);
  if (BoolVars.size() > 1)
    Fn.addOutput(BoolVars.back(), B);
  checkGateLevel(Fn, randomTrace(Fn, 5, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateLevelRandom, ::testing::Range(0u, 25u));
