//===- tests/aig_test.cpp - AIG and mapper tests --------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "aig/Aig.h"
#include "aig/Mapper.h"

#include <gtest/gtest.h>

#include <random>

using namespace reticle;
using namespace reticle::aig;

TEST(Aig, ConstantFoldingAndStrash) {
  Aig G;
  Lit A = G.addInput("a");
  Lit B = G.addInput("b");
  EXPECT_EQ(G.andGate(A, Lit::constFalse()), Lit::constFalse());
  EXPECT_EQ(G.andGate(A, Lit::constTrue()), A);
  EXPECT_EQ(G.andGate(A, A), A);
  EXPECT_EQ(G.andGate(A, ~A), Lit::constFalse());
  EXPECT_EQ(G.numAnds(), 0u);
  Lit X = G.andGate(A, B);
  Lit Y = G.andGate(B, A); // structurally hashed
  EXPECT_EQ(X, Y);
  EXPECT_EQ(G.numAnds(), 1u);
}

TEST(Aig, SimulationOfBasicGates) {
  Aig G;
  Lit A = G.addInput("a");
  Lit B = G.addInput("b");
  Lit C = G.addInput("c");
  G.addOutput("and", G.andGate(A, B));
  G.addOutput("or", G.orGate(A, B));
  G.addOutput("xor", G.xorGate(A, B));
  G.addOutput("mux", G.muxGate(C, A, B));
  uint64_t Va = 0b0101, Vb = 0b0011, Vc = 0b1111;
  std::vector<uint64_t> Out = G.simulate({Va, Vb, Vc});
  uint64_t Mask = 0xF;
  EXPECT_EQ(Out[0] & Mask, (Va & Vb) & Mask);
  EXPECT_EQ(Out[1] & Mask, (Va | Vb) & Mask);
  EXPECT_EQ(Out[2] & Mask, (Va ^ Vb) & Mask);
  EXPECT_EQ(Out[3] & Mask, Va & Mask); // c = 1 selects a
}

TEST(AigBlast, AdderMatchesArithmetic) {
  Aig G;
  Word A, B;
  for (int I = 0; I < 8; ++I)
    A.push_back(G.addInput("a" + std::to_string(I)));
  for (int I = 0; I < 8; ++I)
    B.push_back(G.addInput("b" + std::to_string(I)));
  Word Sum = blastAdd(G, A, B);
  for (int I = 0; I < 8; ++I)
    G.addOutput("s" + std::to_string(I), Sum[I]);

  std::mt19937_64 Rng(7);
  std::vector<uint64_t> Inputs(16);
  for (uint64_t &V : Inputs)
    V = Rng();
  std::vector<uint64_t> Out = G.simulate(Inputs);
  // Check each of the 64 simulated patterns.
  for (int P = 0; P < 64; ++P) {
    unsigned Av = 0, Bv = 0, Sv = 0;
    for (int I = 0; I < 8; ++I) {
      Av |= ((Inputs[I] >> P) & 1) << I;
      Bv |= ((Inputs[8 + I] >> P) & 1) << I;
      Sv |= ((Out[I] >> P) & 1) << I;
    }
    EXPECT_EQ(Sv, (Av + Bv) & 0xFF);
  }
}

namespace {

/// Builds an 8-bit two-operand circuit and checks all blasted ops against
/// reference arithmetic on 64 random patterns.
void checkWordOps(unsigned Seed) {
  Aig G;
  Word A, B;
  for (int I = 0; I < 8; ++I)
    A.push_back(G.addInput("a" + std::to_string(I)));
  for (int I = 0; I < 8; ++I)
    B.push_back(G.addInput("b" + std::to_string(I)));
  Word Sub = blastSub(G, A, B);
  Word Mul = blastMul(G, A, B);
  Lit Eq = blastEq(G, A, B);
  Lit Lt = blastLtSigned(G, A, B);
  for (int I = 0; I < 8; ++I)
    G.addOutput("sub" + std::to_string(I), Sub[I]);
  for (int I = 0; I < 8; ++I)
    G.addOutput("mul" + std::to_string(I), Mul[I]);
  G.addOutput("eq", Eq);
  G.addOutput("lt", Lt);

  std::mt19937_64 Rng(Seed);
  std::vector<uint64_t> Inputs(16);
  for (uint64_t &V : Inputs)
    V = Rng();
  // Make equality reachable: some patterns share operand bits.
  for (int I = 0; I < 8; ++I)
    Inputs[8 + I] = (Inputs[8 + I] & ~uint64_t(0xFF)) | (Inputs[I] & 0xFF);
  std::vector<uint64_t> Out = G.simulate(Inputs);
  for (int P = 0; P < 64; ++P) {
    unsigned Av = 0, Bv = 0, SubV = 0, MulV = 0;
    for (int I = 0; I < 8; ++I) {
      Av |= ((Inputs[I] >> P) & 1) << I;
      Bv |= ((Inputs[8 + I] >> P) & 1) << I;
      SubV |= ((Out[I] >> P) & 1) << I;
      MulV |= ((Out[8 + I] >> P) & 1) << I;
    }
    EXPECT_EQ(SubV, (Av - Bv) & 0xFF);
    EXPECT_EQ(MulV, (Av * Bv) & 0xFF);
    EXPECT_EQ((Out[16] >> P) & 1, uint64_t(Av == Bv));
    int8_t As = static_cast<int8_t>(Av), Bs = static_cast<int8_t>(Bv);
    EXPECT_EQ((Out[17] >> P) & 1, uint64_t(As < Bs));
  }
}

} // namespace

class AigBlastRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(AigBlastRandom, WordOpsMatchReference) { checkWordOps(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Seeds, AigBlastRandom, ::testing::Range(0u, 10u));

TEST(Mapper, MapsSmallCircuit) {
  Aig G;
  Lit A = G.addInput("a");
  Lit B = G.addInput("b");
  Lit C = G.addInput("c");
  Lit D = G.addInput("d");
  G.addOutput("y", G.andGate(G.xorGate(A, B), G.orGate(C, D)));
  Result<Mapping> M = mapAig(G, 6);
  ASSERT_TRUE(M.ok()) << M.error();
  // Four inputs fit one LUT6.
  EXPECT_EQ(M.value().Luts.size(), 1u);
  EXPECT_EQ(M.value().Depth, 1u);
}

TEST(Mapper, DepthGrowsPastK) {
  // A 12-input AND tree cannot fit one LUT6.
  Aig G;
  std::vector<Lit> Inputs;
  for (int I = 0; I < 12; ++I)
    Inputs.push_back(G.addInput("i" + std::to_string(I)));
  Lit All = Lit::constTrue();
  for (Lit L : Inputs)
    All = G.andGate(All, L);
  G.addOutput("y", All);
  Result<Mapping> M = mapAig(G, 6);
  ASSERT_TRUE(M.ok()) << M.error();
  EXPECT_GE(M.value().Luts.size(), 2u);
  EXPECT_GE(M.value().Depth, 2u);
}

namespace {

/// Evaluates a mapped netlist over one input assignment per node pattern.
uint64_t evalMapped(const Mapping &M, const Aig &G, uint32_t Root,
                    const std::vector<uint64_t> &InputValues) {
  auto It = M.LutOfRoot.find(Root);
  EXPECT_NE(It, M.LutOfRoot.end());
  const MappedLut &L = M.Luts[It->second];
  uint64_t Out = 0;
  for (int P = 0; P < 64; ++P) {
    unsigned Minterm = 0;
    for (size_t K = 0; K < L.Leaves.size(); ++K) {
      uint64_t LeafVal;
      if (G.isInput(L.Leaves[K]))
        LeafVal = InputValues[L.Leaves[K] - 1];
      else
        LeafVal = evalMapped(M, G, L.Leaves[K], InputValues);
      if ((LeafVal >> P) & 1)
        Minterm |= 1u << K;
    }
    if ((L.Truth >> Minterm) & 1)
      Out |= uint64_t(1) << P;
  }
  return Out;
}

} // namespace

class MapperRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(MapperRandom, MappingPreservesFunctions) {
  // Random AIG over 8 inputs; mapped netlist must compute the same
  // functions as the AIG itself.
  std::mt19937 Rng(GetParam() * 1337 + 5);
  Aig G;
  std::vector<Lit> Pool;
  for (int I = 0; I < 8; ++I)
    Pool.push_back(G.addInput("i" + std::to_string(I)));
  std::uniform_int_distribution<size_t> Pick(0, 100);
  for (int I = 0; I < 60; ++I) {
    Lit A = Pool[Pick(Rng) % Pool.size()];
    Lit B = Pool[Pick(Rng) % Pool.size()];
    if (Pick(Rng) % 2)
      A = ~A;
    if (Pick(Rng) % 2)
      B = ~B;
    Pool.push_back(G.andGate(A, B));
  }
  Lit OutLit = Pool.back();
  if (OutLit.node() == 0 || G.isInput(OutLit.node()))
    return; // degenerate graph; nothing to map
  G.addOutput("y", Lit(OutLit.node(), false));

  Result<Mapping> M = mapAig(G, 6, 8);
  ASSERT_TRUE(M.ok()) << M.error();

  std::mt19937_64 Rng64(GetParam());
  std::vector<uint64_t> Inputs(8);
  for (uint64_t &V : Inputs)
    V = Rng64();
  std::vector<uint64_t> Reference = G.simulate(Inputs);
  uint64_t Mapped = evalMapped(M.value(), G, OutLit.node(), Inputs);
  EXPECT_EQ(Mapped, Reference[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperRandom, ::testing::Range(0u, 30u));
