//===- tests/device_test.cpp - Device model tests -----------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "device/Device.h"

#include <gtest/gtest.h>

using namespace reticle;
using device::Device;
using ir::Resource;

TEST(Device, Xczu3egMatchesPaperResourceCounts) {
  Device D = Device::xczu3eg();
  // Section 7: "a Xilinx xczu3eg-sbva484-1 FPGA, with 360 DSPs and 71K
  // LUTs".
  EXPECT_EQ(D.numDsps(), 360u);
  EXPECT_EQ(D.numLuts(), 71040u);
  EXPECT_EQ(D.lutsPerSlice(), 8u);
}

TEST(Device, ColumnsPartitionByKind) {
  Device D = Device::xczu3eg();
  std::vector<unsigned> DspCols = D.columnsOf(Resource::Dsp);
  std::vector<unsigned> LutCols = D.columnsOf(Resource::Lut);
  EXPECT_EQ(DspCols.size(), 3u);
  EXPECT_EQ(LutCols.size(), 60u);
  EXPECT_EQ(DspCols.size() + LutCols.size(), D.numColumns());
}

TEST(Device, SlotValidity) {
  Device D = Device::tiny();
  // Column 1 is the DSP column of height 4.
  EXPECT_TRUE(D.isValidSlot(Resource::Dsp, 1, 0));
  EXPECT_TRUE(D.isValidSlot(Resource::Dsp, 1, 3));
  EXPECT_FALSE(D.isValidSlot(Resource::Dsp, 1, 4));  // row overflow
  EXPECT_FALSE(D.isValidSlot(Resource::Dsp, 0, 0));  // wrong kind
  EXPECT_FALSE(D.isValidSlot(Resource::Lut, 1, 0));  // wrong kind
  EXPECT_FALSE(D.isValidSlot(Resource::Lut, 9, 0));  // column overflow
}

TEST(Device, MaxHeight) {
  Device D = Device::small();
  EXPECT_EQ(D.maxHeight(Resource::Lut), 16u);
  EXPECT_EQ(D.maxHeight(Resource::Dsp), 8u);
}

TEST(Device, SliceCounts) {
  Device D = Device::small();
  EXPECT_EQ(D.numSlices(Resource::Lut), 64u);
  EXPECT_EQ(D.numSlices(Resource::Dsp), 16u);
  EXPECT_EQ(D.numLuts(), 512u);
}
