//===- tests/synth_test.cpp - Baseline toolchain tests --------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "synth/Synth.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::synth;
using device::Device;

namespace {

ir::Function parseOk(const char *Source) {
  Result<ir::Function> Fn = ir::parseFunction(Source);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  return Fn.take();
}

SynthOptions smallOptions(Mode M) {
  SynthOptions Options;
  Options.SynthMode = M;
  Options.Dev = Device::small();
  Options.Anneal.MovesPerCell = 8;
  Options.Anneal.MinMovesPerTemp = 0; // keep unit tests quick
  return Options;
}

/// Builds an N-wide parallel i8 add in "behavioral" (scalar IR) style.
ir::Function paperDspAdd(unsigned N) {
  ir::Function Fn("dsp_add");
  ir::Type I8 = ir::Type::makeInt(8);
  Fn.addInput("a", ir::Type::makeInt(8, N));
  Fn.addInput("b", ir::Type::makeInt(8, N));
  Fn.addOutput("y", ir::Type::makeInt(8, N));
  Fn.addInstr(ir::Instr::makeComp("y", ir::Type::makeInt(8, N),
                                  ir::CompOp::Add, {"a", "b"}));
  (void)I8;
  return Fn;
}

} // namespace

TEST(Synth, BaseModeKeepsAddsInLuts) {
  // "Vivado's heuristics fail to exploit DSPs at all using a pure
  // behavioral description" (Section 7.2).
  ir::Function Fn = paperDspAdd(4);
  Result<SynthResult> R = synthesize(Fn, smallOptions(Mode::Base));
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().Dsps, 0u);
  EXPECT_GT(R.value().Luts, 0u);
}

TEST(Synth, HintModeUsesScalarDsps) {
  ir::Function Fn = paperDspAdd(4);
  Result<SynthResult> R = synthesize(Fn, smallOptions(Mode::Hint));
  ASSERT_TRUE(R.ok()) << R.error();
  // One scalar DSP per lane: no SIMD packing in the behavioral flow.
  EXPECT_EQ(R.value().Dsps, 4u);
}

TEST(Synth, HintModeSilentlyFallsBackWhenExhausted) {
  // 24 lanes on a 16-DSP device: 16 DSPs, the rest quietly become LUTs
  // (Figure 4's cliff).
  ir::Function Fn = paperDspAdd(24);
  Result<SynthResult> R = synthesize(Fn, smallOptions(Mode::Hint));
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().Dsps, 16u);
  EXPECT_GT(R.value().DspFallbacks, 0u);
  EXPECT_GT(R.value().Luts, 0u);
}

TEST(Synth, MultiplicationsInferDspsInBothModes) {
  ir::Function Fn = parseOk(R"(
    def m(a:i8, b:i8) -> (y:i8) {
      y:i8 = mul(a, b) @??;
    }
  )");
  for (Mode M : {Mode::Base, Mode::Hint}) {
    Result<SynthResult> R = synthesize(Fn, smallOptions(M));
    ASSERT_TRUE(R.ok()) << R.error();
    EXPECT_EQ(R.value().Dsps, 1u);
  }
}

TEST(Synth, MulAddFusesIntoOneDsp) {
  ir::Function Fn = parseOk(R"(
    def ma(a:i8, b:i8, c:i8) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      y:i8 = add(t0, c) @??;
    }
  )");
  Result<SynthResult> R = synthesize(Fn, smallOptions(Mode::Base));
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().Dsps, 1u);
  EXPECT_EQ(R.value().Luts, 0u);
}

TEST(Synth, HintCascadesMulAddChains) {
  ir::Function Fn = parseOk(R"(
    def dot(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, in:i8) -> (t2:i8) {
      m0:i8 = mul(a0, b0) @??;
      t0:i8 = add(m0, in) @??;
      m1:i8 = mul(a1, b1) @??;
      t1:i8 = add(m1, t0) @??;
      m2:i8 = mul(a2, b2) @??;
      t2:i8 = add(m2, t1) @??;
    }
  )");
  Result<SynthResult> Base = synthesize(Fn, smallOptions(Mode::Base));
  Result<SynthResult> Hint = synthesize(Fn, smallOptions(Mode::Hint));
  ASSERT_TRUE(Base.ok()) << Base.error();
  ASSERT_TRUE(Hint.ok()) << Hint.error();
  EXPECT_EQ(Base.value().CascadeChains, 0u);
  EXPECT_EQ(Hint.value().CascadeChains, 1u);
  EXPECT_EQ(Base.value().Dsps, 3u);
  EXPECT_EQ(Hint.value().Dsps, 3u);
  // Cascade routing makes the hint flow at least as fast.
  EXPECT_LE(Hint.value().Timing.CriticalPathNs,
            Base.value().Timing.CriticalPathNs + 1e-9);
}

TEST(Synth, RegistersBecomeFlipFlops) {
  ir::Function Fn = parseOk(R"(
    def r(a:i8, en:bool) -> (y:i8) {
      t0:i8 = add(a, a) @??;
      y:i8 = reg[0](t0, en) @??;
    }
  )");
  Result<SynthResult> R = synthesize(Fn, smallOptions(Mode::Base));
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().Ffs, 8u);
  EXPECT_GT(R.value().Timing.FmaxMhz, 0.0);
}

TEST(Synth, ControlLogicMapsCompactly) {
  // FSM-style mux/eq logic: the AIG mapper packs it into few LUT6s,
  // typically fewer than Reticle's per-instruction expansion.
  ir::Function Fn = parseOk(R"(
    def fsm(in:i8, en:bool) -> (state:i8) {
      s1:i8 = const[1];
      s2:i8 = const[2];
      c0:bool = eq(state, s1) @??;
      c1:bool = lt(in, s2) @??;
      take:bool = and(c0, c1) @??;
      nextv:i8 = mux(take, s2, s1) @??;
      state:i8 = reg[1](nextv, en) @??;
    }
  )");
  Result<SynthResult> R = synthesize(Fn, smallOptions(Mode::Base));
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().Dsps, 0u);
  EXPECT_GT(R.value().Luts, 0u);
  EXPECT_LT(R.value().Luts, 40u);
}

TEST(Synth, TimesAreAccounted) {
  ir::Function Fn = paperDspAdd(8);
  Result<SynthResult> R = synthesize(Fn, smallOptions(Mode::Base));
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_GT(R.value().TotalMs, 0.0);
  EXPECT_GT(R.value().AigAnds, 0u);
  EXPECT_GT(R.value().AigDepth, 0u);
}

TEST(Synth, EmitBehavioralShapes) {
  ir::Function Fn = parseOk(R"(
    def beh(a:i8<2>, b:i8<2>, c:bool, en:bool) -> (y:i8<2>) {
      t0:i8<2> = add(a, b) @??;
      t1:i8<2> = mux(c, t0, a) @??;
      y:i8<2> = reg[0](t1, en) @??;
    }
  )");
  verilog::Module Base = emitBehavioral(Fn, Mode::Base);
  std::string Out = Base.str();
  // Vector ops unroll into per-lane scalar assigns (behavioral style).
  EXPECT_NE(Out.find("assign t0[7:0] = (a[7:0] + b[7:0]);"),
            std::string::npos);
  EXPECT_NE(Out.find("assign t0[15:8] = (a[15:8] + b[15:8]);"),
            std::string::npos);
  EXPECT_NE(Out.find("always @(posedge clock)"), std::string::npos);
  EXPECT_EQ(Out.find("use_dsp"), std::string::npos);
  verilog::Module Hint = emitBehavioral(Fn, Mode::Hint);
  EXPECT_NE(Hint.str().find("use_dsp"), std::string::npos);
}
