//===- tests/obs_noop_test.cpp - Compiled-out telemetry tests ------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Built with RETICLE_NO_TELEMETRY (see tests/CMakeLists.txt) and linked
/// WITHOUT reticle_obs: proves the compiled-out header is self-contained —
/// the whole API collapses to inline no-ops referencing no symbol of
/// Telemetry.cpp — and that instrumented code still compiles against it.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_NO_TELEMETRY
#error "this test must be compiled with RETICLE_NO_TELEMETRY"
#endif

#include "obs/Coverage.h"
#include "obs/Remarks.h"
#include "obs/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace reticle;

TEST(ObsNoop, FullApiSurfaceIsInert) {
  // The instrumentation idiom used throughout the compiler must compile
  // and do nothing.
  static obs::Counter &C = obs::counter("noop.counter");
  ++C;
  C++;
  C += 100;
  EXPECT_EQ(C.load(), 0u);
  C.reset();

  obs::gauge("noop.gauge").set(3.5);
  EXPECT_DOUBLE_EQ(obs::gauge("noop.gauge").load(), 0.0);

  obs::Histogram &H = obs::defaultTelemetry().histogram("noop.hist");
  H.record(1.5);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.percentile(99), 0.0);
  EXPECT_EQ(obs::defaultTelemetry().foldedStacks(), "");

  obs::enableTracing();
  EXPECT_FALSE(obs::tracingEnabled());
  {
    obs::Span Sp("noop.span");
    Sp.arg("i", int64_t(-1));
    Sp.arg("u", uint64_t(1));
    Sp.arg("n", 2u);
    Sp.arg("d", 0.5);
    Sp.arg("c", "literal");
    Sp.arg("s", std::string("string"));
  }
  obs::instant("noop.instant");
  obs::resetForTest();
}

TEST(ObsNoop, RemarksApiSurfaceIsInert) {
  obs::enableRemarks();
  EXPECT_FALSE(obs::remarksEnabled());
  if (obs::remarksEnabled())
    FAIL() << "the call-site guard must be constant-false";
  obs::Remark("isel", "pattern")
      .instr("t0")
      .message("covered")
      .arg("i", int64_t(-1))
      .arg("u", uint64_t(1))
      .arg("n", 2u)
      .arg("d", 0.5)
      .arg("c", "literal")
      .arg("s", std::string("string"));
  EXPECT_EQ(obs::remarkCount(), 0u);
  EXPECT_EQ(obs::remarksText(), "");
  EXPECT_EQ(obs::remarksJsonl("p.ret"), "");
  obs::clearRemarks();
}

TEST(ObsNoop, RemarkFilesAreEmptyButWritable) {
  std::string Path = ::testing::TempDir() + "obs_noop_remarks.txt";
  ASSERT_TRUE(obs::writeRemarksText(Path).ok());
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  EXPECT_EQ(In.peek(), std::ifstream::traits_type::eof());
  std::remove(Path.c_str());
  EXPECT_FALSE(obs::writeRemarksText("/nonexistent-dir/x/y.txt").ok());
  EXPECT_FALSE(obs::writeRemarksJsonl("/nonexistent-dir/x/y.jsonl", "p").ok());
}

TEST(ObsNoop, CoverageApiSurfaceIsInert) {
  // The collectors' idiom must compile against the no-op class and record
  // nothing. Note the Json-returning free helpers (coverageJson /
  // coverageDoc) live in reticle_obs and are deliberately NOT exercised
  // here: this binary proves the header alone is self-contained.
  obs::Coverage Cov;
  Cov.declare("ir.op", "add");
  Cov.hit("ir.op", "add");
  Cov.hit("sim.toggle", "y[0]:01", 3);
  EXPECT_TRUE(Cov.empty());
  EXPECT_TRUE(Cov.snapshot().empty());

  obs::Coverage Other;
  Other.hit("s", "b");
  Cov.merge(Other);
  Cov.merge(Other.snapshot());
  EXPECT_TRUE(Cov.empty());
  Cov.reset();

  obs::defaultCoverage().hit("s", "b");
  EXPECT_TRUE(obs::defaultCoverage().empty());
}

TEST(ObsNoop, TraceOutputIsEmptyButValid) {
  EXPECT_EQ(obs::traceJson(), "{\"traceEvents\":[]}");

  std::string Path = ::testing::TempDir() + "obs_noop_trace.json";
  ASSERT_TRUE(obs::writeTrace(Path).ok());
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), "{\"traceEvents\":[]}\n");
  std::remove(Path.c_str());

  EXPECT_FALSE(obs::writeTrace("/nonexistent-dir/x/y.json").ok());
}
