//===- tests/toir_test.cpp - Assembly-to-IR expansion tests --------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rasm/ToIr.h"

#include "interp/Interp.h"
#include "ir/Verifier.h"
#include "rasm/AsmParser.h"
#include "tdl/Ultrascale.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::rasm;
using interp::Trace;
using interp::Value;
using ir::Type;

namespace {

AsmProgram parseOk(const char *Source) {
  Result<AsmProgram> P = parseAsmProgram(Source);
  EXPECT_TRUE(P.ok()) << P.error();
  return P.take();
}

} // namespace

TEST(ToIr, ExpandsMulAddAndInterprets) {
  AsmProgram P = parseOk(R"(
    def ma(a:i8, b:i8, c:i8) -> (y:i8) {
      y:i8 = muladd(a, b, c) @dsp(??, ??);
    }
  )");
  Result<ir::Function> Fn = toIr(P, tdl::ultrascale());
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  Status S = ir::verify(Fn.value());
  ASSERT_TRUE(S.ok()) << S.error();

  Trace Input;
  interp::Step &Step = Input.appendStep();
  Step["a"] = Value::splat(Type::makeInt(8), 3);
  Step["b"] = Value::splat(Type::makeInt(8), 4);
  Step["c"] = Value::splat(Type::makeInt(8), 5);
  Result<Trace> Out = interp::interpret(Fn.value(), Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_EQ(Out.value().get(0, "y")->scalar(), 17);
}

TEST(ToIr, HoleAttributesFlowIntoRegisters) {
  AsmProgram P = parseOk(R"(
    def r(a:i8, en:bool) -> (y:i8) {
      y:i8 = reg[9](a, en) @lut(??, ??);
    }
  )");
  Result<ir::Function> Fn = toIr(P, tdl::ultrascale());
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  // The expanded body holds a reg with init 9.
  bool FoundReg = false;
  for (const ir::Instr &I : Fn.value().body())
    if (I.isReg()) {
      FoundReg = true;
      EXPECT_EQ(I.attrs()[0], 9);
    }
  EXPECT_TRUE(FoundReg);

  Trace Input;
  interp::Step &Step = Input.appendStep();
  Step["a"] = Value::splat(Type::makeInt(8), 1);
  Step["en"] = Value::makeBool(false);
  Result<Trace> Out = interp::interpret(Fn.value(), Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_EQ(Out.value().get(0, "y")->scalar(), 9);
}

TEST(ToIr, WireInstructionsPassThrough) {
  AsmProgram P = parseOk(R"(
    def w(a:i8) -> (y:i8) {
      t0:i8 = sll[1](a);
      y:i8 = add(t0, a) @lut(??, ??);
    }
  )");
  Result<ir::Function> Fn = toIr(P, tdl::ultrascale());
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  EXPECT_TRUE(Fn.value().body()[0].isWire());
  EXPECT_EQ(Fn.value().body()[0].wireOp(), ir::WireOp::Sll);
}

TEST(ToIr, CascadeChainExpandsAndComputesDotProduct) {
  // Figure 11: two chained muladds compute a*b + c*d + in.
  AsmProgram P = parseOk(R"(
    def dot(a:i8, b:i8, c:i8, d:i8, in:i8) -> (t1:i8) {
      t0:i8 = muladd_co(a, b, in) @dsp(x, y);
      t1:i8 = muladd_ci(c, d, t0) @dsp(x, y+1);
    }
  )");
  Result<ir::Function> Fn = toIr(P, tdl::ultrascale());
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  Trace Input;
  interp::Step &Step = Input.appendStep();
  Step["a"] = Value::splat(Type::makeInt(8), 2);
  Step["b"] = Value::splat(Type::makeInt(8), 3);
  Step["c"] = Value::splat(Type::makeInt(8), 4);
  Step["d"] = Value::splat(Type::makeInt(8), 5);
  Step["in"] = Value::splat(Type::makeInt(8), 1);
  Result<Trace> Out = interp::interpret(Fn.value(), Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_EQ(Out.value().get(0, "t1")->scalar(), 2 * 3 + 4 * 5 + 1);
}

TEST(ToIr, RejectsUnknownOperation) {
  AsmProgram P = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      y:i8 = warp(a) @dsp(??, ??);
    }
  )");
  Result<ir::Function> Fn = toIr(P, tdl::ultrascale());
  ASSERT_FALSE(Fn.ok());
  EXPECT_NE(Fn.error().find("no definition"), std::string::npos);
}

TEST(ToIr, RejectsWrongPrimitive) {
  // mux exists on LUTs only; requesting it on a DSP must fail, not
  // silently fall back (hard constraints, Section 3).
  AsmProgram P = parseOk(R"(
    def f(c:bool, a:i8, b:i8) -> (y:i8) {
      y:i8 = mux(c, a, b) @dsp(??, ??);
    }
  )");
  EXPECT_FALSE(toIr(P, tdl::ultrascale()).ok());
}

TEST(ToIr, RejectsAttributeCountMismatch) {
  AsmProgram P = parseOk(R"(
    def f(a:i8, b:i8) -> (y:i8) {
      y:i8 = add[3](a, b) @lut(??, ??);
    }
  )");
  Result<ir::Function> Fn = toIr(P, tdl::ultrascale());
  ASSERT_FALSE(Fn.ok());
  EXPECT_NE(Fn.error().find("attribute"), std::string::npos);
}

TEST(ToIr, VectorSimdAdd) {
  AsmProgram P = parseOk(R"(
    def v(a:i8<4>, b:i8<4>) -> (y:i8<4>) {
      y:i8<4> = add(a, b) @dsp(??, ??);
    }
  )");
  Result<ir::Function> Fn = toIr(P, tdl::ultrascale());
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  Trace Input;
  interp::Step &Step = Input.appendStep();
  Step["a"] = Value::fromLanes(Type::makeInt(8, 4), {1, 2, 3, 4});
  Step["b"] = Value::fromLanes(Type::makeInt(8, 4), {5, 6, 7, 8});
  Result<Trace> Out = interp::interpret(Fn.value(), Input);
  ASSERT_TRUE(Out.ok()) << Out.error();
  const Value *Y = Out.value().get(0, "y");
  EXPECT_EQ(Y->lane(0), 6);
  EXPECT_EQ(Y->lane(3), 12);
}
