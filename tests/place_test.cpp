//===- tests/place_test.cpp - Placement tests ----------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "place/Place.h"

#include "rasm/AsmParser.h"

#include <gtest/gtest.h>

#include <random>

using namespace reticle;
using namespace reticle::place;
using device::Device;
using rasm::AsmProgram;

namespace {

AsmProgram parseOk(const std::string &Source) {
  Result<AsmProgram> P = rasm::parseAsmProgram(Source);
  EXPECT_TRUE(P.ok()) << P.error();
  return P.take();
}

/// Builds a program with N independent DSP adds, all wildcard-placed.
AsmProgram manyDspAdds(unsigned N) {
  std::string Source = "def f(a:i8, b:i8) -> (t0:i8";
  for (unsigned I = 1; I < N; ++I)
    Source += ", t" + std::to_string(I) + ":i8";
  Source += ") {\n";
  for (unsigned I = 0; I < N; ++I)
    Source += "  t" + std::to_string(I) +
              ":i8 = add(a, b) @dsp(?\?, ?\?);\n";
  Source += "}\n";
  return parseOk(Source);
}

} // namespace

TEST(Place, SingleWildcardInstruction) {
  AsmProgram P = parseOk(
      "def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @dsp(?\?, ?\?); }");
  Result<AsmProgram> Placed = reticle::place::place(P, Device::tiny());
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  EXPECT_TRUE(Placed.value().isPlaced());
  Status S = checkPlacement(P, Placed.value(), Device::tiny());
  EXPECT_TRUE(S.ok()) << S.error();
}

TEST(Place, HonorsPinnedLocations) {
  AsmProgram P = parseOk(R"(
    def f(a:i8, b:i8) -> (y:i8, z:i8) {
      y:i8 = add(a, b) @dsp(1, 2);
      z:i8 = add(a, b) @dsp(??, ??);
    }
  )");
  Result<AsmProgram> Placed = reticle::place::place(P, Device::tiny());
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  EXPECT_EQ(Placed.value().body()[0].loc().X.offset(), 1);
  EXPECT_EQ(Placed.value().body()[0].loc().Y.offset(), 2);
  // The second instruction must avoid the pinned slot.
  EXPECT_FALSE(Placed.value().body()[1].loc().X.offset() == 1 &&
               Placed.value().body()[1].loc().Y.offset() == 2);
  EXPECT_TRUE(checkPlacement(P, Placed.value(), Device::tiny()).ok());
}

TEST(Place, RejectsInvalidPin) {
  AsmProgram P = parseOk(
      "def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @dsp(0, 0); }");
  // Column 0 of the tiny device holds LUTs.
  Result<AsmProgram> Placed = reticle::place::place(P, Device::tiny());
  ASSERT_FALSE(Placed.ok());
  EXPECT_NE(Placed.error().find("not a valid"), std::string::npos);
}

TEST(Place, CascadeChainStaysInOneColumn) {
  AsmProgram P = parseOk(R"(
    def dot(a:i8, b:i8, c:i8, d:i8, e:i8, f:i8, in:i8) -> (t2:i8) {
      t0:i8 = muladd_co(a, b, in) @dsp(x, y);
      t1:i8 = muladd_cio(c, d, t0) @dsp(x, y+1);
      t2:i8 = muladd_ci(e, f, t1) @dsp(x, y+2);
    }
  )");
  Result<AsmProgram> Placed = reticle::place::place(P, Device::tiny());
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  int64_t X0 = Placed.value().body()[0].loc().X.offset();
  int64_t Y0 = Placed.value().body()[0].loc().Y.offset();
  EXPECT_EQ(Placed.value().body()[1].loc().X.offset(), X0);
  EXPECT_EQ(Placed.value().body()[1].loc().Y.offset(), Y0 + 1);
  EXPECT_EQ(Placed.value().body()[2].loc().X.offset(), X0);
  EXPECT_EQ(Placed.value().body()[2].loc().Y.offset(), Y0 + 2);
  EXPECT_TRUE(checkPlacement(P, Placed.value(), Device::tiny()).ok());
}

TEST(Place, FailsWhenChainExceedsColumn) {
  // Five chained DSPs cannot fit a column of height four.
  std::string Source =
      "def f(a:i8, b:i8, in:i8) -> (t4:i8) {\n";
  std::string Prev = "in";
  for (int I = 0; I < 5; ++I) {
    Source += "  t" + std::to_string(I) + ":i8 = muladd_cio(a, b, " + Prev +
              ") @dsp(x, y+" + std::to_string(I) + ");\n";
    Prev = "t" + std::to_string(I);
  }
  Source += "}\n";
  AsmProgram P = parseOk(Source);
  Result<AsmProgram> Placed = reticle::place::place(P, Device::tiny());
  ASSERT_FALSE(Placed.ok());
  EXPECT_NE(Placed.error().find("placement failed"), std::string::npos);
}

TEST(Place, ExactCapacityFits) {
  // The tiny device has exactly 4 DSP slots.
  AsmProgram P = manyDspAdds(4);
  Result<AsmProgram> Placed = reticle::place::place(P, Device::tiny());
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  EXPECT_TRUE(checkPlacement(P, Placed.value(), Device::tiny()).ok());
}

TEST(Place, OverCapacityFails) {
  AsmProgram P = manyDspAdds(5);
  Result<AsmProgram> Placed = reticle::place::place(P, Device::tiny());
  ASSERT_FALSE(Placed.ok());
}

TEST(Place, ShrinkingCompactsLayout) {
  // 8 DSP adds on the small device (16 DSP slots in 2 columns of 8):
  // shrinking should pack them into the first column.
  AsmProgram P = manyDspAdds(8);
  PlacementStats Stats;
  Result<AsmProgram> Placed =
      reticle::place::place(P, Device::small(), PlacementOptions{}, &Stats);
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  EXPECT_TRUE(checkPlacement(P, Placed.value(), Device::small()).ok());
  unsigned MaxRow = 0, MaxCol = 0;
  for (const rasm::AsmInstr &I : Placed.value().body()) {
    MaxCol = std::max<unsigned>(MaxCol, I.loc().X.offset());
    MaxRow = std::max<unsigned>(MaxRow, I.loc().Y.offset());
  }
  // One column of 8 suffices; the first DSP column of small() is x=2.
  EXPECT_LE(MaxCol, 2u);
  EXPECT_LE(MaxRow, 7u);
  EXPECT_GE(Stats.Solves, 1u); // shrink probes may all fail the capacity precheck
}

TEST(Place, NoShrinkOptionSkipsExtraSolves) {
  AsmProgram P = manyDspAdds(2);
  PlacementOptions Options;
  Options.Shrink = false;
  PlacementStats Stats;
  Result<AsmProgram> Placed =
      reticle::place::place(P, Device::small(), Options, &Stats);
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  EXPECT_EQ(Stats.Solves, 1u);
}

TEST(Place, MixedLutAndDspPrograms) {
  AsmProgram P = parseOk(R"(
    def f(a:i8, b:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @dsp(??, ??);
      t1:i8 = add(t0, b) @lut(??, ??);
      y:i8 = reg[0](t1, en) @lut(??, ??);
    }
  )");
  Result<AsmProgram> Placed = reticle::place::place(P, Device::tiny());
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  EXPECT_TRUE(checkPlacement(P, Placed.value(), Device::tiny()).ok());
}

TEST(Place, WireInstructionsNeedNoSlots) {
  AsmProgram P = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      t0:i8 = sll[1](a);
      y:i8 = add(t0, a) @lut(??, ??);
    }
  )");
  Result<AsmProgram> Placed = reticle::place::place(P, Device::tiny());
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  EXPECT_TRUE(Placed.value().body()[0].isWire());
}

TEST(Place, MixedPrimitiveClusterRejected) {
  AsmProgram P = parseOk(R"(
    def f(a:i8, b:i8) -> (y:i8, z:i8) {
      y:i8 = add(a, b) @dsp(x, y0);
      z:i8 = add(a, b) @lut(x, y0+1);
    }
  )");
  Result<AsmProgram> Placed = reticle::place::place(P, Device::tiny());
  ASSERT_FALSE(Placed.ok());
  EXPECT_NE(Placed.error().find("one primitive kind"), std::string::npos);
}

class PlaceRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PlaceRandomTest, RandomMixesAlwaysValidOrFail) {
  std::mt19937 Rng(GetParam());
  std::uniform_int_distribution<int> CountDist(1, 12);
  std::uniform_int_distribution<int> KindDist(0, 2);
  unsigned N = CountDist(Rng);
  std::string Source = "def f(a:i8, b:i8) -> (t0:i8) {\n";
  for (unsigned I = 0; I < N; ++I) {
    std::string T = "t" + std::to_string(I);
    int Kind = KindDist(Rng);
    const char *Loc = Kind == 0   ? "@lut(?\?, ?\?)"
                      : Kind == 1 ? "@dsp(?\?, ?\?)"
                                  : "@lut(?\?, 1)";
    Source += "  " + T + ":i8 = add(a, b) " + Loc + ";\n";
  }
  Source += "}\n";
  AsmProgram P = parseOk(Source);
  Result<AsmProgram> Placed = reticle::place::place(P, Device::small());
  if (Placed.ok()) {
    Status S = checkPlacement(P, Placed.value(), Device::small());
    EXPECT_TRUE(S.ok()) << S.error() << "\n" << Placed.value().str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlaceRandomTest, ::testing::Range(0u, 25u));

TEST(Place, CapacityCoreNamesResourceAndInstruction) {
  // 5 DSP instructions on a 4-slot device: the arithmetic precheck
  // refutes it, and the explanation must name the resource and a real
  // instruction of the program.
  AsmProgram P = manyDspAdds(5);
  PlacementStats Stats;
  Result<AsmProgram> Placed =
      reticle::place::place(P, Device::tiny(), PlacementOptions{}, &Stats);
  ASSERT_FALSE(Placed.ok());
  ASSERT_FALSE(Stats.Core.empty());
  EXPECT_EQ(Stats.Core.front().Kind, "capacity");
  EXPECT_EQ(Stats.Core.front().Instr, "t0");
  EXPECT_NE(Stats.Core.front().Detail.find("dsp"), std::string::npos);
  EXPECT_NE(Stats.Core.front().Detail.find("5"), std::string::npos);
}

TEST(Place, SolverLevelUnsatYieldsMinimizedCore) {
  // Passes the capacity precheck (4 instructions, 4 slots) and the tall-
  // cluster precheck (two chains of height >= 2, two segments fit), but no
  // interleaving works: a contiguous pair and a gapped pair cannot share
  // one column of four rows. The refutation must come from the SAT solver,
  // and the minimized core must name the competing clusters.
  AsmProgram P = parseOk(R"(
    def f(a:i8, b:i8) -> (p0:i8, p1:i8, q0:i8, q1:i8) {
      p0:i8 = add(a, b) @dsp(x, y);
      p1:i8 = add(a, b) @dsp(x, y+1);
      q0:i8 = add(a, b) @dsp(u, v);
      q1:i8 = add(a, b) @dsp(u, v+2);
    }
  )");
  PlacementStats Stats;
  Result<AsmProgram> Placed =
      reticle::place::place(P, Device::tiny(), PlacementOptions{}, &Stats);
  ASSERT_FALSE(Placed.ok());
  ASSERT_FALSE(Stats.Core.empty());
  bool NamedP = false, NamedQ = false;
  for (const CoreConstraint &C : Stats.Core) {
    EXPECT_TRUE(C.Kind == "choose-one" || C.Kind == "distinct") << C.Kind;
    EXPECT_FALSE(C.Detail.empty());
    if (C.Kind == "choose-one") {
      NamedP = NamedP || C.Instr == "p0";
      NamedQ = NamedQ || C.Instr == "q0";
    }
  }
  // Relaxing either cluster's choose-one constraint makes the formula
  // satisfiable, so the minimized core must keep both.
  EXPECT_TRUE(NamedP);
  EXPECT_TRUE(NamedQ);
}

TEST(Place, TimelineRecordsInitialSolutionAndEveryProbe) {
  AsmProgram P = manyDspAdds(8);
  PlacementStats Stats;
  Result<AsmProgram> Placed =
      reticle::place::place(P, Device::small(), PlacementOptions{}, &Stats);
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  ASSERT_GE(Stats.Timeline.size(), 2u);
  const ShrinkProbe &First = Stats.Timeline.front();
  EXPECT_EQ(First.ProbeAxis, ShrinkProbe::Axis::Initial);
  EXPECT_EQ(First.Result, ShrinkProbe::Outcome::Sat);
  EXPECT_EQ(First.Slots.size(), 8u);
  for (size_t I = 1; I < Stats.Timeline.size(); ++I) {
    const ShrinkProbe &Probe = Stats.Timeline[I];
    EXPECT_NE(Probe.ProbeAxis, ShrinkProbe::Axis::Initial);
    // Every frame carries the layout accepted so far; a shrinking run
    // never grows its occupied-slot set.
    EXPECT_EQ(Probe.Slots.size(), 8u);
    EXPECT_LE(Probe.MaxColumn, First.MaxColumn);
    EXPECT_LE(Probe.MaxRow, First.MaxRow);
  }
  // The run succeeded, so no frame and no constraint explanation linger.
  EXPECT_TRUE(Stats.Core.empty());
}

TEST(Place, NoShrinkTimelineHasOnlyTheInitialFrame) {
  AsmProgram P = manyDspAdds(2);
  PlacementOptions Options;
  Options.Shrink = false;
  PlacementStats Stats;
  Result<AsmProgram> Placed =
      reticle::place::place(P, Device::small(), Options, &Stats);
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  ASSERT_EQ(Stats.Timeline.size(), 1u);
  EXPECT_EQ(Stats.Timeline.front().ProbeAxis, ShrinkProbe::Axis::Initial);
}

TEST(Place, SolverModesAgreeOnFinalArea) {
  // Scratch, incremental, and portfolio shrink searches may pick
  // different models once learnt clauses carry over, but they must land
  // on the same shrunk bounding box and all pass the checker.
  AsmProgram P = manyDspAdds(6);
  unsigned Col[3], Row[3];
  int I = 0;
  for (SatMode Mode :
       {SatMode::Scratch, SatMode::Incremental, SatMode::Portfolio}) {
    PlacementOptions Options;
    Options.Mode = Mode;
    PlacementStats Stats;
    Result<AsmProgram> Placed = reticle::place::place(
        parseOk(P.str()), Device::small(), Options, &Stats);
    ASSERT_TRUE(Placed.ok()) << Placed.error();
    Status S = checkPlacement(P, Placed.value(), Device::small());
    EXPECT_TRUE(S.ok()) << S.error();
    EXPECT_EQ(Stats.Mode, Mode);
    Col[I] = Stats.MaxColumn;
    Row[I] = Stats.MaxRow;
    ++I;
  }
  EXPECT_EQ(Col[0], Col[1]);
  EXPECT_EQ(Row[0], Row[1]);
  EXPECT_EQ(Col[0], Col[2]);
  EXPECT_EQ(Row[0], Row[2]);
}

TEST(Place, IncrementalModeRecordsReuseStats) {
  // The persistent solver encodes at most once and attributes every
  // shrink probe as either precheck or SAT-backed; reused problem
  // clauses accumulate per SAT-backed probe.
  AsmProgram P = manyDspAdds(8);
  PlacementOptions Options;
  Options.Mode = SatMode::Incremental;
  PlacementStats Stats;
  Result<AsmProgram> Placed =
      reticle::place::place(P, Device::small(), Options, &Stats);
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  // Timeline holds the initial frame plus one frame per shrink probe.
  EXPECT_EQ(Stats.IncrementalProbes + Stats.PrecheckProbes,
            Stats.Timeline.size() - 1);
  EXPECT_LE(Stats.IncrementalEncodes, 1u);
  if (Stats.IncrementalProbes > 0) {
    EXPECT_EQ(Stats.IncrementalEncodes, 1u);
    EXPECT_GT(Stats.ReusedClauses, 0u);
  }
  EXPECT_GT(Stats.ShrinkMs, 0.0);
}

TEST(Place, ScratchModeMatchesHistoricalAccounting) {
  // Scratch mode re-encodes per SAT-backed probe and never builds the
  // persistent solver, so encodes == SAT-backed probes and nothing is
  // reused.
  AsmProgram P = manyDspAdds(8);
  PlacementOptions Options;
  Options.Mode = SatMode::Scratch;
  PlacementStats Stats;
  Result<AsmProgram> Placed =
      reticle::place::place(P, Device::small(), Options, &Stats);
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  EXPECT_EQ(Stats.Mode, SatMode::Scratch);
  EXPECT_EQ(Stats.IncrementalEncodes, Stats.IncrementalProbes);
  EXPECT_EQ(Stats.ReusedClauses, 0u);
  EXPECT_EQ(Stats.ReusedLearned, 0u);
}

TEST(Place, PortfolioModeAttributesLanes) {
  // A portfolio run records round/exchange totals and, for each
  // SAT-backed probe, which lane decided it (timeline Lane >= 0).
  AsmProgram P = manyDspAdds(8);
  PlacementOptions Options;
  Options.Mode = SatMode::Portfolio;
  Options.PortfolioLanes = 4;
  PlacementStats Stats;
  Result<AsmProgram> Placed =
      reticle::place::place(P, Device::small(), Options, &Stats);
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  uint64_t Wins = 0;
  for (uint64_t W : Stats.PortfolioWins)
    Wins += W;
  size_t LaneFrames = 0;
  for (const ShrinkProbe &Frame : Stats.Timeline)
    if (Frame.Lane >= 0) {
      ++LaneFrames;
      EXPECT_LT(Frame.Lane, 4);
    }
  EXPECT_EQ(Wins, Stats.IncrementalProbes);
  EXPECT_EQ(LaneFrames, Stats.IncrementalProbes);
  if (Stats.IncrementalProbes > 0)
    EXPECT_GT(Stats.PortfolioRounds, 0u);
}
