//===- tests/tdl_test.cpp - Target-description tests ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "tdl/TdlParser.h"
#include "tdl/Ultrascale.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::tdl;
using ir::Resource;
using ir::Type;

TEST(TdlParser, ParsesPaperFigure10) {
  const char *Source = R"(
    reg[lut, 1, 2](a:i8, en:bool) -> (y:i8) {
      y:i8 = reg[0](a, en);
    }
    add[lut, 1, 2](a:i8, b:i8) -> (y:i8) {
      y:i8 = add(a, b);
    }
    add_reg[lut, 1, 2](a:i8, b:i8, en:bool) -> (y:i8) {
      t0:i8 = add(a, b);
      y:i8 = reg[0](t0, en);
    }
  )";
  Result<Target> T = parseTarget("fig10", Source);
  ASSERT_TRUE(T.ok()) << T.error();
  EXPECT_EQ(T.value().defs().size(), 3u);
  const TargetDef &AddReg = T.value().defs()[2];
  EXPECT_EQ(AddReg.Name, "add_reg");
  EXPECT_EQ(AddReg.Prim, Resource::Lut);
  EXPECT_EQ(AddReg.Area, 1);
  EXPECT_EQ(AddReg.Latency, 2);
  EXPECT_EQ(AddReg.Body.size(), 2u);
}

TEST(TdlParser, AttributeHolesBind) {
  const char *Source = R"(
    reg[lut, 1, 1](a:i8, en:bool) -> (y:i8) {
      y:i8 = reg[_](a, en);
    }
  )";
  Result<Target> T = parseTarget("t", Source);
  ASSERT_TRUE(T.ok()) << T.error();
  const TargetDef &Def = T.value().defs()[0];
  EXPECT_EQ(Def.numHoles(), 1u);
  ir::Function Fn = Def.toFunction({42});
  EXPECT_EQ(Fn.body()[0].attrs()[0], 42);
}

TEST(TdlParser, RejectsCyclicBody) {
  const char *Source = R"(
    bad[lut, 1, 1](a:i8, en:bool) -> (y:i8) {
      t0:i8 = add(a, y);
      y:i8 = reg[0](t0, en);
    }
  )";
  Result<Target> T = parseTarget("t", Source);
  ASSERT_FALSE(T.ok());
  EXPECT_NE(T.error().find("acyclic"), std::string::npos);
}

TEST(TdlParser, RejectsUnusedInput) {
  const char *Source = R"(
    bad[lut, 1, 1](a:i8, b:i8) -> (y:i8) {
      y:i8 = id(a);
    }
  )";
  Result<Target> T = parseTarget("t", Source);
  ASSERT_FALSE(T.ok());
  EXPECT_NE(T.error().find("never used"), std::string::npos);
}

TEST(TdlParser, RejectsIllTypedBody) {
  const char *Source = R"(
    bad[lut, 1, 1](a:i8, b:i16) -> (y:i8) {
      y:i8 = add(a, b);
    }
  )";
  EXPECT_FALSE(parseTarget("t", Source).ok());
}

TEST(TdlParser, RejectsDuplicateSignature) {
  const char *Source = R"(
    add[lut, 1, 1](a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b); }
    add[lut, 2, 2](a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b); }
  )";
  Result<Target> T = parseTarget("t", Source);
  ASSERT_FALSE(T.ok());
  EXPECT_NE(T.error().find("duplicate"), std::string::npos);
}

TEST(TdlParser, AllowsOverloadsAcrossPrimAndWidth) {
  const char *Source = R"(
    add[lut, 8, 2](a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b); }
    add[dsp, 16, 1](a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b); }
    add[lut, 16, 2](a:i16, b:i16) -> (y:i16) { y:i16 = add(a, b); }
  )";
  Result<Target> T = parseTarget("t", Source);
  ASSERT_TRUE(T.ok()) << T.error();
  std::vector<Type> I8Args = {Type::makeInt(8), Type::makeInt(8)};
  const TargetDef *Lut =
      T.value().resolve("add", Resource::Lut, I8Args, Type::makeInt(8));
  const TargetDef *Dsp =
      T.value().resolve("add", Resource::Dsp, I8Args, Type::makeInt(8));
  ASSERT_NE(Lut, nullptr);
  ASSERT_NE(Dsp, nullptr);
  EXPECT_EQ(Lut->Area, 8);
  EXPECT_EQ(Dsp->Area, 16);
  EXPECT_EQ(T.value().resolve("add", Resource::Lut,
                              {Type::makeInt(4), Type::makeInt(4)},
                              Type::makeInt(4)),
            nullptr);
}

TEST(TdlParser, CascadeVariantDetection) {
  const char *Source = R"(
    muladd_co[dsp, 16, 2](a:i8, b:i8, c:i8) -> (y:i8) {
      t0:i8 = mul(a, b);
      y:i8 = add(t0, c);
    }
  )";
  Result<Target> T = parseTarget("t", Source);
  ASSERT_TRUE(T.ok()) << T.error();
  EXPECT_TRUE(T.value().defs()[0].isCascadeVariant());
}

TEST(Ultrascale, ParsesAndHasCoreDefs) {
  const Target &T = ultrascale();
  std::vector<Type> I8x2 = {Type::makeInt(8), Type::makeInt(8)};
  EXPECT_NE(T.resolve("add", Resource::Lut, I8x2, Type::makeInt(8)), nullptr);
  EXPECT_NE(T.resolve("add", Resource::Dsp, I8x2, Type::makeInt(8)), nullptr);
  EXPECT_NE(T.resolve("mul", Resource::Dsp, I8x2, Type::makeInt(8)), nullptr);
  std::vector<Type> I8x3 = {Type::makeInt(8), Type::makeInt(8),
                            Type::makeInt(8)};
  EXPECT_NE(T.resolve("muladd", Resource::Dsp, I8x3, Type::makeInt(8)),
            nullptr);
  EXPECT_NE(T.resolve("muladd_co", Resource::Dsp, I8x3, Type::makeInt(8)),
            nullptr);
  // SIMD vector add: four 8-bit lanes in one DSP.
  Type V = Type::makeInt(8, 4);
  EXPECT_NE(T.resolve("add", Resource::Dsp, {V, V}, V), nullptr);
  // No DSP SIMD multiply (UG579).
  EXPECT_EQ(T.resolve("mul", Resource::Dsp, {V, V}, V), nullptr);
  // Control logic exists on LUTs only.
  Type B = Type::makeBool();
  EXPECT_NE(T.resolve("mux", Resource::Lut,
                      {B, Type::makeInt(8), Type::makeInt(8)},
                      Type::makeInt(8)),
            nullptr);
  EXPECT_EQ(T.resolve("mux", Resource::Dsp,
                      {B, Type::makeInt(8), Type::makeInt(8)},
                      Type::makeInt(8)),
            nullptr);
}

TEST(Ultrascale, CostModelSteersSelection) {
  const Target &T = ultrascale();
  std::vector<Type> I8x2 = {Type::makeInt(8), Type::makeInt(8)};
  const TargetDef *LutAdd =
      T.resolve("add", Resource::Lut, I8x2, Type::makeInt(8));
  const TargetDef *DspAdd =
      T.resolve("add", Resource::Dsp, I8x2, Type::makeInt(8));
  const TargetDef *LutMul =
      T.resolve("mul", Resource::Lut, I8x2, Type::makeInt(8));
  const TargetDef *DspMul =
      T.resolve("mul", Resource::Dsp, I8x2, Type::makeInt(8));
  ASSERT_TRUE(LutAdd && DspAdd && LutMul && DspMul);
  // Small adds prefer LUTs; multiplies prefer DSPs (Section 2).
  EXPECT_LT(LutAdd->Area, DspAdd->Area);
  EXPECT_GT(LutMul->Area, DspMul->Area);
}

TEST(Ultrascale, TextRoundTripsThroughPrinter) {
  const Target &T = ultrascale();
  // Printing every definition and re-parsing must reproduce the target.
  Result<Target> Again = parseTarget("ultrascale2", T.str());
  ASSERT_TRUE(Again.ok()) << Again.error();
  EXPECT_EQ(Again.value().defs().size(), T.defs().size());
}
