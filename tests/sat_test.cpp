//===- tests/sat_test.cpp - SAT solver tests -----------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "sat/Dimacs.h"
#include "sat/Portfolio.h"
#include "sat/Solver.h"

#include <gtest/gtest.h>

#include <random>

using namespace reticle;
using namespace reticle::sat;

namespace {

/// Checks a model against a clause list.
bool satisfies(const std::vector<std::vector<Lit>> &Clauses,
               const Solver &S) {
  for (const std::vector<Lit> &Clause : Clauses) {
    bool Ok = false;
    for (Lit L : Clause)
      if (S.value(L.var()) != L.negated()) {
        Ok = true;
        break;
      }
    if (!Ok)
      return false;
  }
  return true;
}

/// Brute-force satisfiability for up to ~20 variables.
bool bruteForce(uint32_t NumVars,
                const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Mask = 0; Mask < (uint64_t(1) << NumVars); ++Mask) {
    bool All = true;
    for (const std::vector<Lit> &Clause : Clauses) {
      bool Ok = false;
      for (Lit L : Clause) {
        bool V = (Mask >> L.var()) & 1;
        if (V != L.negated()) {
          Ok = true;
          break;
        }
      }
      if (!Ok) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

} // namespace

TEST(Sat, TrivialSat) {
  Solver S;
  Var A = S.newVar();
  Var B = S.newVar();
  EXPECT_TRUE(S.addClause({Lit(A), Lit(B)}));
  EXPECT_TRUE(S.addClause({Lit(A, true), Lit(B)}));
  EXPECT_EQ(S.solve(), Outcome::Sat);
  EXPECT_TRUE(S.value(B));
}

TEST(Sat, TrivialUnsat) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addUnit(Lit(A)));
  EXPECT_FALSE(S.addUnit(Lit(A, true)));
  EXPECT_EQ(S.solve(), Outcome::Unsat);
}

TEST(Sat, EmptyClauseIsUnsat) {
  Solver S;
  S.newVar();
  EXPECT_FALSE(S.addClause({}));
  EXPECT_EQ(S.solve(), Outcome::Unsat);
}

TEST(Sat, TautologyIgnored) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause({Lit(A), Lit(A, true)}));
  EXPECT_EQ(S.solve(), Outcome::Sat);
}

TEST(Sat, PigeonholeUnsat) {
  // 4 pigeons in 3 holes: classic small UNSAT instance that forces real
  // conflict analysis.
  constexpr unsigned Pigeons = 4, Holes = 3;
  Solver S;
  Var P[Pigeons][Holes];
  for (unsigned I = 0; I < Pigeons; ++I)
    for (unsigned J = 0; J < Holes; ++J)
      P[I][J] = S.newVar();
  for (unsigned I = 0; I < Pigeons; ++I) {
    std::vector<Lit> AtLeastOne;
    for (unsigned J = 0; J < Holes; ++J)
      AtLeastOne.push_back(Lit(P[I][J]));
    ASSERT_TRUE(S.addClause(AtLeastOne));
  }
  for (unsigned J = 0; J < Holes; ++J)
    for (unsigned I1 = 0; I1 < Pigeons; ++I1)
      for (unsigned I2 = I1 + 1; I2 < Pigeons; ++I2)
        ASSERT_TRUE(S.addBinary(Lit(P[I1][J], true), Lit(P[I2][J], true)));
  EXPECT_EQ(S.solve(), Outcome::Unsat);
}

TEST(Sat, PigeonholeSatWhenEnoughHoles) {
  constexpr unsigned Pigeons = 4, Holes = 4;
  Solver S;
  std::vector<std::vector<Lit>> Clauses;
  Var P[Pigeons][Holes];
  for (unsigned I = 0; I < Pigeons; ++I)
    for (unsigned J = 0; J < Holes; ++J)
      P[I][J] = S.newVar();
  for (unsigned I = 0; I < Pigeons; ++I) {
    std::vector<Lit> AtLeastOne;
    for (unsigned J = 0; J < Holes; ++J)
      AtLeastOne.push_back(Lit(P[I][J]));
    Clauses.push_back(AtLeastOne);
  }
  for (unsigned J = 0; J < Holes; ++J)
    for (unsigned I1 = 0; I1 < Pigeons; ++I1)
      for (unsigned I2 = I1 + 1; I2 < Pigeons; ++I2)
        Clauses.push_back({Lit(P[I1][J], true), Lit(P[I2][J], true)});
  for (const std::vector<Lit> &C : Clauses)
    ASSERT_TRUE(S.addClause(C));
  ASSERT_EQ(S.solve(), Outcome::Sat);
  EXPECT_TRUE(satisfies(Clauses, S));
}

TEST(Sat, ChainedImplications) {
  // x0 -> x1 -> ... -> x99, x0 forced true, then force !x99: UNSAT.
  Solver S;
  std::vector<Var> X;
  for (unsigned I = 0; I < 100; ++I)
    X.push_back(S.newVar());
  for (unsigned I = 0; I + 1 < 100; ++I)
    ASSERT_TRUE(S.addBinary(Lit(X[I], true), Lit(X[I + 1])));
  ASSERT_TRUE(S.addUnit(Lit(X[0])));
  EXPECT_EQ(S.solve(), Outcome::Sat);
  EXPECT_TRUE(S.value(X[99]));
  Solver S2;
  std::vector<Var> Y;
  for (unsigned I = 0; I < 100; ++I)
    Y.push_back(S2.newVar());
  for (unsigned I = 0; I + 1 < 100; ++I)
    ASSERT_TRUE(S2.addBinary(Lit(Y[I], true), Lit(Y[I + 1])));
  ASSERT_TRUE(S2.addUnit(Lit(Y[0])));
  bool Ok = S2.addUnit(Lit(Y[99], true));
  EXPECT_TRUE(!Ok || S2.solve() == Outcome::Unsat);
}

class SatRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SatRandomTest, AgreesWithBruteForce) {
  // Random 3-SAT near the phase transition, checked against brute force.
  std::mt19937 Rng(GetParam());
  constexpr uint32_t NumVars = 12;
  std::uniform_int_distribution<uint32_t> VarDist(0, NumVars - 1);
  std::uniform_int_distribution<int> SignDist(0, 1);
  uint32_t NumClauses = 12 + GetParam() % 40;

  std::vector<std::vector<Lit>> Clauses;
  for (uint32_t I = 0; I < NumClauses; ++I) {
    std::vector<Lit> Clause;
    for (int K = 0; K < 3; ++K)
      Clause.push_back(Lit(VarDist(Rng), SignDist(Rng) != 0));
    Clauses.push_back(std::move(Clause));
  }

  Solver S;
  for (uint32_t V = 0; V < NumVars; ++V)
    S.newVar();
  bool AddOk = true;
  for (const std::vector<Lit> &C : Clauses)
    AddOk = S.addClause(C) && AddOk;

  bool Expected = bruteForce(NumVars, Clauses);
  if (!AddOk) {
    EXPECT_FALSE(Expected);
    return;
  }
  Outcome Got = S.solve();
  EXPECT_EQ(Got == Outcome::Sat, Expected);
  if (Got == Outcome::Sat) {
    EXPECT_TRUE(satisfies(Clauses, S));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomTest, ::testing::Range(0u, 60u));

TEST(Dimacs, ParseAndSolve) {
  const char *Source = R"(
c a small satisfiable instance
p cnf 3 3
1 -2 0
2 3 0
-1 0
)";
  Result<Cnf> C = parseDimacs(Source);
  ASSERT_TRUE(C.ok()) << C.error();
  EXPECT_EQ(C.value().NumVars, 3u);
  EXPECT_EQ(C.value().Clauses.size(), 3u);
  Solver S;
  ASSERT_TRUE(C.value().loadInto(S));
  ASSERT_EQ(S.solve(), Outcome::Sat);
  EXPECT_FALSE(S.value(0)); // -1 unit
  EXPECT_FALSE(S.value(1)); // 1 or -2 with !x1 forces -2
  EXPECT_TRUE(S.value(2));  // 2 or 3 with !x2 forces 3
}

TEST(Dimacs, RoundTrip) {
  Cnf C;
  C.NumVars = 4;
  C.Clauses = {{1, -2}, {3, 4, -1}, {-4}};
  Result<Cnf> Again = parseDimacs(C.str());
  ASSERT_TRUE(Again.ok()) << Again.error();
  EXPECT_EQ(Again.value().NumVars, C.NumVars);
  EXPECT_EQ(Again.value().Clauses, C.Clauses);
}

TEST(Dimacs, RejectsMalformed) {
  EXPECT_FALSE(parseDimacs("1 2 0").ok());
  EXPECT_FALSE(parseDimacs("p cnf 2 1\n1 3 0\n").ok());
  EXPECT_FALSE(parseDimacs("p cnf 2 2\n1 2 0\n").ok());
  EXPECT_FALSE(parseDimacs("p cnf 2 1\n1 2\n").ok());
}

TEST(Sat, StatsArePopulated) {
  Solver S;
  std::vector<Var> X;
  for (unsigned I = 0; I < 20; ++I)
    X.push_back(S.newVar());
  // XOR-like chains generate conflicts.
  for (unsigned I = 0; I + 2 < 20; ++I) {
    ASSERT_TRUE(S.addClause({Lit(X[I]), Lit(X[I + 1]), Lit(X[I + 2])}));
    ASSERT_TRUE(S.addClause(
        {Lit(X[I], true), Lit(X[I + 1], true), Lit(X[I + 2], true)}));
  }
  ASSERT_EQ(S.solve(), Outcome::Sat);
  EXPECT_GT(S.stats().Decisions, 0u);
  EXPECT_GT(S.stats().Propagations, 0u);
}

TEST(Sat, StatsNonzeroAndMonotoneOnUnsat) {
  // Pigeonhole PHP(4,3) forces genuine conflict-driven search, so every
  // statistic of interest must move.
  constexpr unsigned Pigeons = 4, Holes = 3;
  Solver S;
  Var P[Pigeons][Holes];
  for (unsigned I = 0; I < Pigeons; ++I)
    for (unsigned J = 0; J < Holes; ++J)
      P[I][J] = S.newVar();
  for (unsigned I = 0; I < Pigeons; ++I) {
    std::vector<Lit> AtLeastOne;
    for (unsigned J = 0; J < Holes; ++J)
      AtLeastOne.push_back(Lit(P[I][J]));
    ASSERT_TRUE(S.addClause(AtLeastOne));
  }
  for (unsigned J = 0; J < Holes; ++J)
    for (unsigned I1 = 0; I1 < Pigeons; ++I1)
      for (unsigned I2 = I1 + 1; I2 < Pigeons; ++I2)
        ASSERT_TRUE(S.addBinary(Lit(P[I1][J], true), Lit(P[I2][J], true)));
  ASSERT_EQ(S.solve(), Outcome::Unsat);
  Solver::Statistics First = S.stats();
  EXPECT_GT(First.Decisions, 0u);
  EXPECT_GT(First.Propagations, 0u);
  EXPECT_GT(First.Conflicts, 0u);
  // Statistics accumulate across solves: a second call may add events but
  // can never report fewer.
  EXPECT_EQ(S.solve(), Outcome::Unsat);
  EXPECT_GE(S.stats().Decisions, First.Decisions);
  EXPECT_GE(S.stats().Propagations, First.Propagations);
  EXPECT_GE(S.stats().Conflicts, First.Conflicts);
  EXPECT_GE(S.stats().Restarts, First.Restarts);
  EXPECT_GE(S.stats().Learned, First.Learned);
}

TEST(Sat, StatsNonzeroAndMonotoneOnSat) {
  Solver S;
  std::vector<Var> X;
  for (unsigned I = 0; I < 20; ++I)
    X.push_back(S.newVar());
  for (unsigned I = 0; I + 2 < 20; ++I) {
    ASSERT_TRUE(S.addClause({Lit(X[I]), Lit(X[I + 1]), Lit(X[I + 2])}));
    ASSERT_TRUE(S.addClause(
        {Lit(X[I], true), Lit(X[I + 1], true), Lit(X[I + 2], true)}));
  }
  ASSERT_EQ(S.solve(), Outcome::Sat);
  Solver::Statistics First = S.stats();
  EXPECT_GT(First.Decisions, 0u);
  EXPECT_GT(First.Propagations, 0u);
  ASSERT_EQ(S.solve(), Outcome::Sat);
  Solver::Statistics Second = S.stats();
  EXPECT_GE(Second.Decisions, First.Decisions);
  EXPECT_GE(Second.Propagations, First.Propagations);
  EXPECT_GE(Second.Conflicts, First.Conflicts);
  // The second run does real work again, so the totals strictly grow.
  EXPECT_GT(Second.Decisions + Second.Propagations,
            First.Decisions + First.Propagations);
}

TEST(Sat, FailedAssumptionsYieldCore) {
  // Selector-style encoding: s1 forces x, s2 forces !x, s3 forces the
  // irrelevant y. Assuming all three is Unsat, and only s1 and s2 can be
  // responsible.
  Solver S;
  Var S1 = S.newVar(), S2 = S.newVar(), S3 = S.newVar();
  Var X = S.newVar(), Y = S.newVar();
  ASSERT_TRUE(S.addBinary(Lit(S1, true), Lit(X)));
  ASSERT_TRUE(S.addBinary(Lit(S2, true), Lit(X, true)));
  ASSERT_TRUE(S.addBinary(Lit(S3, true), Lit(Y)));
  ASSERT_EQ(S.solveWith({Lit(S1), Lit(S2), Lit(S3)}), Outcome::Unsat);
  const std::vector<Lit> &Core = S.unsatCore();
  ASSERT_FALSE(Core.empty());
  for (Lit L : Core) {
    EXPECT_TRUE(L.var() == S1 || L.var() == S2)
        << "core names the irrelevant assumption s3 (var " << L.var() << ")";
    EXPECT_FALSE(L.negated());
  }
  // Dropping any assumption outside the core keeps the formula Unsat, and
  // the full assumption set without both core members is Sat — the core
  // is unsatisfiable on its own.
  ASSERT_EQ(S.solveWith({Lit(S1), Lit(S2)}), Outcome::Unsat);
  ASSERT_EQ(S.solveWith({Lit(S1), Lit(S3)}), Outcome::Sat);
  ASSERT_EQ(S.solveWith({Lit(S2), Lit(S3)}), Outcome::Sat);
}

TEST(Sat, CoreIsUnsatisfiableAsUnitClauses) {
  // The reported core, asserted as unit clauses over the same formula in a
  // fresh solver, must itself be unsatisfiable.
  auto Build = [](Solver &S, Var &A, Var &B, Var &X) {
    A = S.newVar();
    B = S.newVar();
    X = S.newVar();
    ASSERT_TRUE(S.addBinary(Lit(A, true), Lit(X)));
    ASSERT_TRUE(S.addBinary(Lit(B, true), Lit(X, true)));
  };
  Solver S;
  Var A, B, X;
  Build(S, A, B, X);
  ASSERT_EQ(S.solveWith({Lit(A), Lit(B)}), Outcome::Unsat);
  std::vector<Lit> Core = S.unsatCore();
  ASSERT_FALSE(Core.empty());

  // Asserting the core as units must refute the formula, either already
  // at add time (root-level unit contradiction) or in the solver.
  Solver Fresh;
  Var A2, B2, X2;
  Build(Fresh, A2, B2, X2);
  bool Contradicted = false;
  for (Lit L : Core)
    if (!Fresh.addClause({L})) {
      Contradicted = true;
      break;
    }
  EXPECT_TRUE(Contradicted || Fresh.solve() == Outcome::Unsat);
}

TEST(Sat, MinimizeCoreDropsRedundantAssumptions) {
  // a forces x, c forces !x; b constrains nothing. A seeded "core" of all
  // three must shrink to exactly {a, c}.
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar(), X = S.newVar();
  ASSERT_TRUE(S.addBinary(Lit(A, true), Lit(X)));
  ASSERT_TRUE(S.addBinary(Lit(C, true), Lit(X, true)));
  ASSERT_EQ(S.solveWith({Lit(A), Lit(B), Lit(C)}), Outcome::Unsat);
  std::vector<Lit> Minimal = S.minimizeCore({Lit(A), Lit(B), Lit(C)});
  ASSERT_EQ(Minimal.size(), 2u);
  bool HasA = false, HasC = false;
  for (Lit L : Minimal) {
    HasA = HasA || L == Lit(A);
    HasC = HasC || L == Lit(C);
  }
  EXPECT_TRUE(HasA);
  EXPECT_TRUE(HasC);
  // Minimization runs extra solves; the solver stays usable after.
  EXPECT_EQ(S.solveWith({Lit(A), Lit(B)}), Outcome::Sat);
}

TEST(Sat, ProfileSurvivesBudgetExhaustion) {
  // PHP(4,3) cannot be refuted within one conflict; the probe must come
  // back Unknown while still reporting the work it did — the shrink-probe
  // remarks depend on this.
  constexpr unsigned Pigeons = 4, Holes = 3;
  Solver S;
  Var P[Pigeons][Holes];
  for (unsigned I = 0; I < Pigeons; ++I)
    for (unsigned J = 0; J < Holes; ++J)
      P[I][J] = S.newVar();
  for (unsigned I = 0; I < Pigeons; ++I) {
    std::vector<Lit> AtLeastOne;
    for (unsigned J = 0; J < Holes; ++J)
      AtLeastOne.push_back(Lit(P[I][J]));
    ASSERT_TRUE(S.addClause(AtLeastOne));
  }
  for (unsigned J = 0; J < Holes; ++J)
    for (unsigned I1 = 0; I1 < Pigeons; ++I1)
      for (unsigned I2 = I1 + 1; I2 < Pigeons; ++I2)
        ASSERT_TRUE(S.addBinary(Lit(P[I1][J], true), Lit(P[I2][J], true)));
  ASSERT_EQ(S.solve(/*ConflictBudget=*/1), Outcome::Unknown);
  EXPECT_EQ(S.lastProfile().Result, Outcome::Unknown);
  EXPECT_GE(S.lastProfile().Conflicts, 1u);
  EXPECT_GT(S.lastProfile().Decisions, 0u);
  EXPECT_EQ(S.stats().Unknowns, 1u);
  EXPECT_EQ(S.stats().Solves, 1u);
  // And without the budget the same solver still refutes the formula.
  ASSERT_EQ(S.solve(), Outcome::Unsat);
  EXPECT_EQ(S.stats().Solves, 2u);
  EXPECT_EQ(S.stats().Unknowns, 1u);
}

TEST(Sat, LearnedClauseHistogramsFill) {
  constexpr unsigned Pigeons = 5, Holes = 4;
  Solver S;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (unsigned I = 0; I < Pigeons; ++I)
    for (unsigned J = 0; J < Holes; ++J)
      P[I][J] = S.newVar();
  for (unsigned I = 0; I < Pigeons; ++I) {
    std::vector<Lit> AtLeastOne;
    for (unsigned J = 0; J < Holes; ++J)
      AtLeastOne.push_back(Lit(P[I][J]));
    ASSERT_TRUE(S.addClause(AtLeastOne));
  }
  for (unsigned J = 0; J < Holes; ++J)
    for (unsigned I1 = 0; I1 < Pigeons; ++I1)
      for (unsigned I2 = I1 + 1; I2 < Pigeons; ++I2)
        ASSERT_TRUE(S.addBinary(Lit(P[I1][J], true), Lit(P[I2][J], true)));
  ASSERT_EQ(S.solve(), Outcome::Unsat);
  uint64_t LbdTotal = 0, SizeTotal = 0;
  for (size_t I = 0; I < Solver::Statistics::HistogramBuckets; ++I) {
    LbdTotal += S.stats().LbdHistogram[I];
    SizeTotal += S.stats().LearnedSizeHistogram[I];
  }
  // Every analyzed conflict lands in both histograms (unit learnts are
  // recorded too, though not stored as clauses).
  EXPECT_GT(LbdTotal, 0u);
  EXPECT_EQ(LbdTotal, SizeTotal);
  EXPECT_GE(LbdTotal, S.stats().Learned);
  EXPECT_GT(S.stats().SolveMs, 0.0);
}

TEST(Sat, DeltaAccountingIsExactAcrossPersistentSolves) {
  // One solver, three solves under different assumptions: the per-solve
  // deltas must partition the accumulated totals exactly — this is the
  // contract the placement shrink loop's per-probe attribution rests on.
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  ASSERT_TRUE(S.addClause({Lit(A), Lit(B)}));
  ASSERT_TRUE(S.addClause({Lit(A, true), Lit(C)}));
  ASSERT_TRUE(S.addClause({Lit(B, true), Lit(C, true)}));

  const Solver::Statistics Zero;
  Solver::Statistics Sum = Zero;
  for (const std::vector<Lit> &Assumps :
       {std::vector<Lit>{}, {Lit(A)}, {Lit(B)}, {Lit(A), Lit(B)}}) {
    Solver::Statistics Before = S.stats();
    S.solveWith(Assumps);
    Solver::Statistics D = Solver::Statistics::delta(S.stats(), Before);
    Sum.Decisions += D.Decisions;
    Sum.Propagations += D.Propagations;
    Sum.Conflicts += D.Conflicts;
    Sum.Solves += D.Solves;
    Sum.Unknowns += D.Unknowns;
  }
  EXPECT_EQ(Sum.Decisions, S.stats().Decisions);
  EXPECT_EQ(Sum.Propagations, S.stats().Propagations);
  EXPECT_EQ(Sum.Conflicts, S.stats().Conflicts);
  EXPECT_EQ(Sum.Solves, S.stats().Solves);
  EXPECT_EQ(Sum.Solves, 4u);
  EXPECT_EQ(Sum.Unknowns, 0u);
}

TEST(Sat, DeltaAttributesUnknownToItsProbe) {
  // A budget-exhausted probe in the middle of a persistent solver's life
  // must surface Unknowns=1 in ITS delta, not leak into neighbors.
  constexpr unsigned Pigeons = 7, Holes = 6;
  Solver S;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (unsigned I = 0; I < Pigeons; ++I)
    for (unsigned J = 0; J < Holes; ++J)
      P[I][J] = S.newVar();
  for (unsigned I = 0; I < Pigeons; ++I) {
    std::vector<Lit> AtLeastOne;
    for (unsigned J = 0; J < Holes; ++J)
      AtLeastOne.push_back(Lit(P[I][J]));
    ASSERT_TRUE(S.addClause(AtLeastOne));
  }
  for (unsigned J = 0; J < Holes; ++J)
    for (unsigned I1 = 0; I1 < Pigeons; ++I1)
      for (unsigned I2 = I1 + 1; I2 < Pigeons; ++I2)
        ASSERT_TRUE(S.addBinary(Lit(P[I1][J], true), Lit(P[I2][J], true)));

  Solver::Statistics Before = S.stats();
  ASSERT_EQ(S.solve(/*ConflictBudget=*/5), Outcome::Unknown);
  Solver::Statistics D1 = Solver::Statistics::delta(S.stats(), Before);
  EXPECT_EQ(D1.Unknowns, 1u);
  EXPECT_EQ(D1.Conflicts, 5u);

  Before = S.stats();
  ASSERT_EQ(S.solve(), Outcome::Unsat);
  Solver::Statistics D2 = Solver::Statistics::delta(S.stats(), Before);
  EXPECT_EQ(D2.Unknowns, 0u);
  EXPECT_GT(D2.Conflicts, 0u);
}

TEST(Sat, SetPhaseSteersTheFirstModel) {
  // An unconstrained variable takes its seeded phase in the first model,
  // which is how the shrink ladder keeps its Kill selectors off during
  // free search.
  for (bool Phase : {false, true}) {
    Solver S;
    Var A = S.newVar(), B = S.newVar();
    ASSERT_TRUE(S.addClause({Lit(A), Lit(B)}));
    S.setPhase(A, Phase);
    S.setPhase(B, true);
    ASSERT_EQ(S.solve(), Outcome::Sat);
    EXPECT_EQ(S.value(A), Phase);
  }
}

TEST(Sat, ImportClauseActsLikeALearnedClause) {
  // An imported clause constrains the search (portfolio sharing), and a
  // root-refuting import reports failure.
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  ASSERT_TRUE(S.addClause({Lit(A), Lit(B)}));
  ASSERT_TRUE(S.importClause({Lit(A, true), Lit(B)}));
  ASSERT_EQ(S.solve(), Outcome::Sat);
  EXPECT_TRUE(S.value(B));
  EXPECT_EQ(S.stats().Imported, 1u);

  Solver T;
  Var C = T.newVar();
  ASSERT_TRUE(T.addUnit(Lit(C)));
  EXPECT_FALSE(T.importClause({Lit(C, true)}));
  EXPECT_EQ(T.solve(), Outcome::Unsat);
}

TEST(Sat, ProofWriterRecordsRefutation) {
  // The DRAT-style log of an UNSAT run ends in the empty clause and
  // carries every learnt addition in DIMACS notation.
  Solver S;
  ProofWriter Proof;
  S.setProof(&Proof);
  Var A = S.newVar(), B = S.newVar();
  ASSERT_TRUE(S.addClause({Lit(A), Lit(B)}));
  ASSERT_TRUE(S.addClause({Lit(A), Lit(B, true)}));
  ASSERT_TRUE(S.addClause({Lit(A, true), Lit(B)}));
  ASSERT_TRUE(S.addClause({Lit(A, true), Lit(B, true)}));
  ASSERT_EQ(S.solve(), Outcome::Unsat);
  EXPECT_GT(Proof.added(), 0u);
  const std::string &Text = Proof.str();
  // The log ends in the empty clause (a bare "0" line) and every other
  // line is a DIMACS clause or a comment/deletion.
  ASSERT_GE(Text.size(), 2u);
  EXPECT_EQ(Text.substr(Text.size() - 2), "0\n");
  std::string TakeOut = Proof.take();
  EXPECT_EQ(TakeOut.substr(TakeOut.size() - 2), "0\n");
  EXPECT_TRUE(Proof.str().empty());
}

TEST(Sat, ClauseExportBufferIsBoundedAndCounted) {
  ClauseExportBuffer Buf;
  std::vector<Lit> Short = {Lit(Var(0)), Lit(Var(1), true)};
  std::vector<Lit> Long(ClauseExportBuffer::MaxLits + 1, Lit(Var(0)));
  EXPECT_FALSE(Buf.tryPush(Long.data(), Long.size()));
  for (size_t I = 0; I < ClauseExportBuffer::Capacity; ++I)
    EXPECT_TRUE(Buf.tryPush(Short.data(), Short.size()));
  EXPECT_FALSE(Buf.tryPush(Short.data(), Short.size()));
  EXPECT_EQ(Buf.size(), ClauseExportBuffer::Capacity);
  EXPECT_EQ(Buf.dropped(), 1u);
  EXPECT_EQ(Buf.litCount(0), 2u);
  EXPECT_EQ(Buf.lits(0)[0], Short[0]);
  Buf.clear();
  EXPECT_EQ(Buf.size(), 0u);
  EXPECT_EQ(Buf.dropped(), 0u);
}

TEST(Sat, PortfolioAgreesWithReferenceAndAttributesWinner) {
  // A 4-lane race decides like a single solver and names a winner lane;
  // lane diversification must not change verdicts.
  sat::Portfolio::Options Opts;
  Opts.Lanes = 4;
  Opts.RoundConflicts = 16;
  sat::Portfolio Port(Opts);
  Var A = Port.newVar(), B = Port.newVar(), C = Port.newVar();
  ASSERT_TRUE(Port.addClause({Lit(A), Lit(B)}));
  ASSERT_TRUE(Port.addBinary(Lit(A, true), Lit(C)));
  ASSERT_TRUE(Port.addBinary(Lit(B, true), Lit(C)));
  ASSERT_EQ(Port.solveWith({}), Outcome::Sat);
  EXPECT_TRUE(Port.value(C));
  EXPECT_LT(Port.winnerLane(), 4u);
  EXPECT_EQ(Port.stats().Solves, 1u);
  EXPECT_EQ(Port.stats().WinsByLane[Port.winnerLane()], 1u);

  // Under assumptions forcing ~C the race refutes and surfaces the core.
  ASSERT_EQ(Port.solveWith({Lit(C, true), Lit(A)}), Outcome::Unsat);
  EXPECT_FALSE(Port.unsatCore().empty());
}

TEST(Sat, PortfolioLaneConfigsAreDiverseAndDeterministic) {
  // Lane 0 is the reference configuration; later lanes differ from it in
  // at least one policy knob, and the mapping is stable.
  Solver::Config Ref = sat::Portfolio::laneConfig(0);
  EXPECT_EQ(Ref.VarDecay, Solver::Config().VarDecay);
  EXPECT_EQ(Ref.RestartBase, Solver::Config().RestartBase);
  EXPECT_EQ(Ref.Phase, Solver::Config().Phase);
  for (unsigned I = 1; I < 4; ++I) {
    Solver::Config C = sat::Portfolio::laneConfig(I);
    EXPECT_NE(C.Seed, Ref.Seed);
    EXPECT_TRUE(C.VarDecay != Ref.VarDecay ||
                C.RestartBase != Ref.RestartBase || C.Phase != Ref.Phase);
    Solver::Config Again = sat::Portfolio::laneConfig(I);
    EXPECT_EQ(C.Seed, Again.Seed);
    EXPECT_EQ(C.VarDecay, Again.VarDecay);
    EXPECT_EQ(C.RestartBase, Again.RestartBase);
  }
}
