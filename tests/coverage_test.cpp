//===- tests/coverage_test.cpp - Coverage registry and collectors --------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// The coverage observability layer: the bin registry itself (declare /
/// hit / merge / snapshot), its JSON serializations, the three collectors
/// (static IR coverage from the verifier, isel pattern coverage from the
/// selector, dynamic toggle coverage from the WaveSink), session
/// isolation, and the batch-level merge that backs `reticle-batch-v1`'s
/// coverage key.
///
//===----------------------------------------------------------------------===//

#include "obs/Coverage.h"

#include "core/Batch.h"
#include "core/Compiler.h"
#include "core/Session.h"
#include "core/Stats.h"
#include "device/Device.h"
#include "interp/Wave.h"
#include "obs/Json.h"

#include <gtest/gtest.h>

using namespace reticle;
using obs::Coverage;
using obs::CoverageSnapshot;
using obs::Json;

namespace {

const char *MacSource = R"(
  def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
    t0:i8 = mul(a, b) @??;
    t1:i8 = add(t0, c) @??;
    y:i8 = reg[0](t1, en) @??;
  }
)";

//===----------------------------------------------------------------------===//
// Serialization (pure functions over a snapshot: valid in every build)
//===----------------------------------------------------------------------===//

TEST(CoverageJson, HitCountsExcludeDeclaredOnlyBins) {
  CoverageSnapshot Snap;
  Snap["s"]["hole"] = 0;
  Snap["s"]["hit1"] = 1;
  Snap["s"]["hit2"] = 4;
  Json Body = obs::coverageJson(Snap);

  const Json *Spaces = Body.find("spaces");
  ASSERT_NE(Spaces, nullptr);
  const Json *S = Spaces->find("s");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->find("hit")->asInt(), 2);
  EXPECT_EQ(S->find("total")->asInt(), 3);
  EXPECT_EQ(S->find("bins")->find("hole")->asInt(), 0);
  EXPECT_EQ(S->find("bins")->find("hit2")->asInt(), 4);

  const Json *Totals = Body.find("totals");
  ASSERT_NE(Totals, nullptr);
  EXPECT_EQ(Totals->find("spaces")->asInt(), 1);
  EXPECT_EQ(Totals->find("bins")->asInt(), 3);
  EXPECT_EQ(Totals->find("hit")->asInt(), 2);
}

TEST(CoverageJson, StandaloneDocCarriesSchemaAndProgram) {
  CoverageSnapshot Snap;
  Snap["s"]["b"] = 1;
  Json Doc = obs::coverageDoc("mac.ret", Snap);
  EXPECT_EQ(Doc.find("schema")->asString(), "reticle-coverage-v1");
  EXPECT_EQ(Doc.find("program")->asString(), "mac.ret");
  ASSERT_NE(Doc.find("spaces"), nullptr);
  ASSERT_NE(Doc.find("totals"), nullptr);
}

TEST(CoverageCollectors, SessionsAreIsolatedAndDeterministic) {
  auto CompileOnce = [] {
    core::CompileSession Session;
    core::CompileOptions Options;
    Options.Dev = device::Device::small();
    Result<core::CompileResult> R =
        core::compileSource(MacSource, "mac.ret", Options, Session);
    EXPECT_TRUE(R.ok()) << R.error();
    return Session.coverage().snapshot();
  };
  CoverageSnapshot A = CompileOnce();
  CoverageSnapshot B = CompileOnce();
  // Two private sessions over the same source record identical coverage —
  // nothing leaked across, nothing nondeterministic crept in. (In a
  // RETICLE_NO_TELEMETRY build both snapshots are empty, which still
  // satisfies the property.)
  EXPECT_EQ(A, B);
}

// Everything below asserts recorded content, which only exists when the
// telemetry layer is compiled in; obs_noop_test covers the compiled-out
// no-op surface instead.
#ifndef RETICLE_NO_TELEMETRY

//===----------------------------------------------------------------------===//
// The registry
//===----------------------------------------------------------------------===//

TEST(CoverageRegistry, DeclareCreatesZeroBinsHitIncrements) {
  Coverage Cov;
  EXPECT_TRUE(Cov.empty());
  Cov.declare("space", "never");
  Cov.hit("space", "twice");
  Cov.hit("space", "twice");
  Cov.hit("other", "bulk", 5);
  EXPECT_FALSE(Cov.empty());

  CoverageSnapshot S = Cov.snapshot();
  ASSERT_EQ(S.size(), 2u);
  EXPECT_EQ(S.at("space").at("never"), 0u);
  EXPECT_EQ(S.at("space").at("twice"), 2u);
  EXPECT_EQ(S.at("other").at("bulk"), 5u);
}

TEST(CoverageRegistry, DeclareNeverLowersAHitBin) {
  Coverage Cov;
  Cov.hit("s", "b");
  Cov.declare("s", "b");
  EXPECT_EQ(Cov.snapshot().at("s").at("b"), 1u);
}

TEST(CoverageRegistry, MergeUnionsSpacesAndSumsCounts) {
  Coverage A, B;
  A.hit("s", "shared", 2);
  A.declare("s", "only_a");
  B.hit("s", "shared", 3);
  B.hit("t", "only_b");
  A.merge(B);

  CoverageSnapshot S = A.snapshot();
  EXPECT_EQ(S.at("s").at("shared"), 5u);
  EXPECT_EQ(S.at("s").at("only_a"), 0u);
  EXPECT_EQ(S.at("t").at("only_b"), 1u);
  // B is untouched.
  EXPECT_EQ(B.snapshot().at("s").at("shared"), 3u);
}

TEST(CoverageRegistry, ResetDropsEverything) {
  Coverage Cov;
  Cov.hit("s", "b");
  Cov.reset();
  EXPECT_TRUE(Cov.empty());
  EXPECT_TRUE(Cov.snapshot().empty());
}

//===----------------------------------------------------------------------===//
// Collectors: static IR + isel pattern coverage through a compile
//===----------------------------------------------------------------------===//

TEST(CoverageCollectors, CompileRecordsIrAndIselSpaces) {
  core::CompileSession Session;
  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  Result<core::CompileResult> R =
      core::compileSource(MacSource, "mac.ret", Options, Session);
  ASSERT_TRUE(R.ok()) << R.error();

  CoverageSnapshot S = Session.coverage().snapshot();
  ASSERT_TRUE(S.count("ir.op"));
  EXPECT_GT(S.at("ir.op").count("add"), 0u);
  EXPECT_GT(S.at("ir.op").at("add"), 0u);
  EXPECT_GT(S.at("ir.op").count("mul"), 0u);
  ASSERT_TRUE(S.count("ir.op_type"));
  EXPECT_GT(S.at("ir.op_type").count("add:i8"), 0u);
  ASSERT_TRUE(S.count("ir.lanes"));
  EXPECT_GT(S.at("ir.lanes").at("1"), 0u);
  ASSERT_TRUE(S.count("ir.resource"));

  // The selector declared every selectable pattern up front, so the space
  // is larger than what one small program can hit — never-fired patterns
  // are zero-count holes.
  ASSERT_TRUE(S.count("isel.pattern"));
  uint64_t Hit = 0, Holes = 0;
  for (const auto &[Bin, Count] : S.at("isel.pattern"))
    (Count ? Hit : Holes)++;
  EXPECT_GT(Hit, 0u);
  EXPECT_GT(Holes, 0u);
}

TEST(CoverageCollectors, StatsDocEmbedsTheCoverageSection) {
  core::CompileSession Session;
  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  Result<core::CompileResult> R =
      core::compileSource(MacSource, "mac.ret", Options, Session);
  ASSERT_TRUE(R.ok()) << R.error();

  Json Doc = core::statsJson(R.value(), "mac.ret", Session.context());
  const Json *Cov = Doc.find("coverage");
  ASSERT_NE(Cov, nullptr);
  const Json *Spaces = Cov->find("spaces");
  ASSERT_NE(Spaces, nullptr);
  EXPECT_NE(Spaces->find("ir.op"), nullptr);
  EXPECT_NE(Spaces->find("isel.pattern"), nullptr);
}

//===----------------------------------------------------------------------===//
// ToggleCoverageSink: per-bit edge bins
//===----------------------------------------------------------------------===//

TEST(ToggleCoverage, RecordsPerBitEdges) {
  Coverage Cov;
  sim::ToggleCoverageSink Sink(Cov);
  ASSERT_TRUE(Sink.begin({sim::WaveSignal("y", 2)}).ok());
  Sink.beginCycle(0);
  Sink.value(0, {false, true}, true); // first observation only seeds
  Sink.beginCycle(1);
  Sink.value(0, {true, false}, true); // bit0 0->1, bit1 1->0
  Sink.beginCycle(2);
  Sink.value(0, {true, false}, false); // unchanged: no edges
  ASSERT_TRUE(Sink.finish(false).ok());

  CoverageSnapshot S = Cov.snapshot();
  ASSERT_TRUE(S.count("sim.toggle"));
  const auto &Bins = S.at("sim.toggle");
  EXPECT_EQ(Bins.at("y[0]:01"), 1u);
  EXPECT_EQ(Bins.at("y[1]:10"), 1u);
  // The edges never seen stay absent (bins appear on first hit).
  EXPECT_EQ(Bins.count("y[0]:10"), 0u);
  EXPECT_EQ(Bins.count("y[1]:01"), 0u);
}

TEST(ToggleCoverage, NarrowedValueReadsAsZeroBits) {
  Coverage Cov;
  sim::ToggleCoverageSink Sink(Cov);
  ASSERT_TRUE(Sink.begin({sim::WaveSignal("w", 2)}).ok());
  Sink.beginCycle(0);
  Sink.value(0, {true, true}, true);
  Sink.beginCycle(1);
  Sink.value(0, {true}, true); // missing bit1 means 0: a 1->0 edge
  ASSERT_TRUE(Sink.finish(false).ok());
  EXPECT_EQ(Cov.snapshot().at("sim.toggle").at("w[1]:10"), 1u);
}

//===----------------------------------------------------------------------===//
// Batch merge
//===----------------------------------------------------------------------===//

TEST(CoverageBatch, MergedSnapshotIsASupersetOfEveryItem) {
  std::vector<core::BatchInput> Inputs;
  Inputs.push_back({"mac.ret", MacSource});
  Inputs.push_back({"sub.ret", R"(
    def f(a:i8<4>, b:i8<4>) -> (y:i8<4>) {
      y:i8<4> = sub(a, b) @??;
    }
  )"});
  core::BatchOptions Options;
  Options.Options.Dev = device::Device::small();
  Options.Jobs = 2;
  std::vector<core::BatchItem> Items = core::compileBatch(Inputs, Options);
  ASSERT_EQ(Items.size(), 2u);
  for (const core::BatchItem &Item : Items)
    ASSERT_TRUE(Item.ok()) << Item.Name;

  CoverageSnapshot Merged = core::batchCoverage(Items);
  for (const core::BatchItem &Item : Items)
    for (const auto &[Space, Bins] : Item.Session->coverage().snapshot())
      for (const auto &[Bin, Count] : Bins) {
        ASSERT_TRUE(Merged.count(Space)) << Space;
        ASSERT_TRUE(Merged.at(Space).count(Bin)) << Space << "/" << Bin;
        EXPECT_GE(Merged.at(Space).at(Bin), Count) << Space << "/" << Bin;
      }
  // The vector-lane program contributes a lane bin mac alone cannot.
  EXPECT_GT(Merged.at("ir.lanes").count("4"), 0u);

  // The batch summary embeds the same merge.
  Json Summary = core::batchStatsJson(Items, 2);
  const Json *Cov = Summary.find("coverage");
  ASSERT_NE(Cov, nullptr);
  EXPECT_NE(Cov->find("spaces")->find("ir.op"), nullptr);
}

#endif // RETICLE_NO_TELEMETRY

} // namespace
