//===- tests/sim_vm_race_check.cpp - Concurrent VM execution check --------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// A plain-main (no gtest) check that one compiled `sim::Program` can be
/// executed from many threads at once: the program is immutable after
/// compilation, every mutable word of simulation state lives in
/// per-execution buffers, so N concurrent runs over the same program must
/// all produce the sequential reference trace. Built without a test
/// framework so it can also be compiled under ThreadSanitizer, where it
/// serves as the data-race detector for the compiled-simulation path (see
/// scripts/check.sh).
///
/// Exit code 0 on success, 1 on any mismatch or failure.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "interp/Interp.h"
#include "ir/Parser.h"
#include "sim/Compile.h"
#include "sim/Vm.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace reticle;
using interp::Trace;
using interp::Value;

namespace {

const char *Source = R"(
def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
  t0:i8 = mul(a, b) @??;
  t1:i8 = add(t0, c) @??;
  y:i8 = reg[0](t1, en) @??;
}
)";

int fail(const char *What) {
  std::fprintf(stderr, "sim_vm_race_check: FAIL: %s\n", What);
  return 1;
}

Trace makeInput(size_t Cycles) {
  Trace T;
  ir::Type I8 = ir::Type::makeInt(8);
  for (size_t C = 0; C < Cycles; ++C) {
    interp::Step &S = T.appendStep();
    S["a"] = Value::splat(I8, static_cast<int64_t>(C % 17) - 8);
    S["b"] = Value::splat(I8, static_cast<int64_t>(C % 23) - 11);
    S["c"] = Value::splat(I8, static_cast<int64_t>(C % 13) - 6);
    S["en"] = Value::makeBool(C % 3 != 0);
  }
  return T;
}

} // namespace

int main() {
  Result<ir::Function> Fn = ir::parseFunction(Source);
  if (!Fn)
    return fail(Fn.error().c_str());

  const size_t Cycles = 256;
  Trace Input = makeInput(Cycles);

  // Compile both program flavors once; all threads share them read-only.
  Result<sim::Program> IrProg = sim::compile(Fn.value());
  if (!IrProg)
    return fail(IrProg.error().c_str());

  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  Result<core::CompileResult> Compiled = core::compile(Fn.value(), Options);
  if (!Compiled)
    return fail(Compiled.error().c_str());
  Result<sim::Program> NetProg = sim::compile(Compiled.value().Verilog);
  if (!NetProg)
    return fail(NetProg.error().c_str());

  // Sequential references.
  Result<Trace> IrRef = sim::execute(IrProg.value(), Input);
  if (!IrRef)
    return fail(IrRef.error().c_str());
  Result<Trace> NetRef = sim::execute(NetProg.value(), Input);
  if (!NetRef)
    return fail(NetRef.error().c_str());

  const unsigned Threads = 8;
  std::vector<int> Bad(Threads, 0);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      // Half the threads run the IR program, half the netlist program;
      // each execute call owns its word table and stack.
      const sim::Program &P = T % 2 == 0 ? IrProg.value() : NetProg.value();
      const Trace &Ref = T % 2 == 0 ? IrRef.value() : NetRef.value();
      for (int Round = 0; Round < 4; ++Round) {
        Result<Trace> Out = sim::execute(P, Input);
        if (!Out || !(Out.value() == Ref)) {
          Bad[T] = 1;
          return;
        }
      }
    });
  for (std::thread &W : Workers)
    W.join();

  for (unsigned T = 0; T < Threads; ++T)
    if (Bad[T])
      return fail("concurrent run diverged from sequential reference");

  std::printf("sim_vm_race_check: ok (%u threads x 4 runs, %zu cycles, "
              "concurrent == sequential)\n",
              Threads, Cycles);
  return 0;
}
