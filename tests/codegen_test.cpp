//===- tests/codegen_test.cpp - Code generation tests ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "isel/Select.h"
#include "ir/Parser.h"
#include "place/Place.h"
#include "rasm/AsmParser.h"
#include "tdl/Ultrascale.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::codegen;
using device::Device;
using rasm::AsmProgram;

namespace {

/// Compile a textual asm program through placement and codegen.
verilog::Module compileAsm(const char *Source, const Device &Dev,
                           Utilization *Util = nullptr) {
  Result<AsmProgram> P = rasm::parseAsmProgram(Source);
  EXPECT_TRUE(P.ok()) << P.error();
  Result<AsmProgram> Placed = place::place(P.value(), Dev);
  EXPECT_TRUE(Placed.ok()) << Placed.error();
  Result<verilog::Module> M =
      generate(Placed.value(), tdl::ultrascale(), Dev, Util);
  EXPECT_TRUE(M.ok()) << M.error();
  return M.take();
}

} // namespace

TEST(Codegen, RequiresPlacedProgram) {
  Result<AsmProgram> P = rasm::parseAsmProgram(
      "def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @dsp(?\?, ?\?); }");
  ASSERT_TRUE(P.ok()) << P.error();
  Result<verilog::Module> M =
      generate(P.value(), tdl::ultrascale(), Device::tiny());
  ASSERT_FALSE(M.ok());
  EXPECT_NE(M.error().find("unresolved"), std::string::npos);
}

TEST(Codegen, DspAddEmitsOneDsp) {
  Utilization Util;
  verilog::Module M = compileAsm(
      "def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @dsp(?\?, ?\?); }",
      Device::tiny(), &Util);
  EXPECT_EQ(Util.Dsps, 1u);
  EXPECT_EQ(Util.Luts, 0u);
  std::string Out = M.str();
  EXPECT_NE(Out.find("DSP48E2"), std::string::npos);
  EXPECT_NE(Out.find("LOC = \"DSP48E2_X"), std::string::npos);
  EXPECT_NE(Out.find(".USE_SIMD(\"ONE48\")"), std::string::npos);
}

TEST(Codegen, SimdVectorAddUsesFour12) {
  verilog::Module M = compileAsm(
      "def f(a:i8<4>, b:i8<4>) -> (y:i8<4>) "
      "{ y:i8<4> = add(a, b) @dsp(?\?, ?\?); }",
      Device::tiny());
  std::string Out = M.str();
  EXPECT_NE(Out.find(".USE_SIMD(\"FOUR12\")"), std::string::npos);
}

TEST(Codegen, LutAddEmitsLutsAndCarry) {
  Utilization Util;
  compileAsm(
      "def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @lut(?\?, ?\?); }",
      Device::tiny(), &Util);
  // One LUT per bit plus one CARRY8 block; no DSPs.
  EXPECT_EQ(Util.Luts, 8u);
  EXPECT_EQ(Util.Carries, 1u);
  EXPECT_EQ(Util.Dsps, 0u);
}

TEST(Codegen, LutInstructionsCarrySliceLocAndBel) {
  verilog::Module M = compileAsm(
      "def f(a:bool, b:bool) -> (y:bool) "
      "{ y:bool = and(a, b) @lut(?\?, ?\?); }",
      Device::tiny());
  std::string Out = M.str();
  EXPECT_NE(Out.find("LOC = \"SLICE_X"), std::string::npos);
  EXPECT_NE(Out.find("BEL = \"A6LUT\""), std::string::npos);
  EXPECT_NE(Out.find("LUT2 # (.INIT(4'h8))"), std::string::npos);
}

TEST(Codegen, RegistersBecomeFdre) {
  Utilization Util;
  verilog::Module M = compileAsm(
      "def f(a:i8, en:bool) -> (y:i8) { y:i8 = reg[5](a, en) "
      "@lut(?\?, ?\?); }",
      Device::tiny(), &Util);
  EXPECT_EQ(Util.Ffs, 8u);
  std::string Out = M.str();
  EXPECT_NE(Out.find("FDRE"), std::string::npos);
  EXPECT_NE(Out.find(".CE(en)"), std::string::npos);
  // init 5 = 0b101: bit 0 and bit 2 set.
  EXPECT_NE(Out.find(".INIT(1'h1)"), std::string::npos);
  EXPECT_NE(Out.find(".INIT(1'h0)"), std::string::npos);
}

TEST(Codegen, CascadePairWiresPcoutToPcin) {
  verilog::Module M = compileAsm(R"(
    def dot(a:i8, b:i8, c:i8, d:i8, in:i8) -> (t1:i8) {
      t0:i8 = muladd_co(a, b, in) @dsp(x, y);
      t1:i8 = muladd_ci(c, d, t0) @dsp(x, y+1);
    }
  )",
                                 Device::tiny());
  std::string Out = M.str();
  EXPECT_NE(Out.find(".PCOUT(t0__pcout)"), std::string::npos);
  EXPECT_NE(Out.find(".PCIN(t0__pcout)"), std::string::npos);
}

TEST(Codegen, WireOpsAreAssignsOnly) {
  Utilization Util;
  verilog::Module M = compileAsm(R"(
    def f(a:i8) -> (y:i8) {
      t0:i8 = sll[2](a);
      t1:i8 = const[7];
      y:i8 = add(t0, t1) @lut(??, ??);
    }
  )",
                                 Device::tiny(), &Util);
  // Wire instructions never instantiate primitives.
  EXPECT_EQ(Util.Luts, 8u);
  std::string Out = M.str();
  EXPECT_NE(Out.find("assign t0 = {a[5:0], 2'h0};"), std::string::npos);
  EXPECT_NE(Out.find("assign t1 = 8'h7;"), std::string::npos);
}

TEST(Codegen, MuxUsesLut3PerBit) {
  Utilization Util;
  compileAsm(
      "def f(c:bool, a:i8, b:i8) -> (y:i8) "
      "{ y:i8 = mux(c, a, b) @lut(?\?, ?\?); }",
      Device::tiny(), &Util);
  EXPECT_EQ(Util.Luts, 8u);
}

TEST(Codegen, EndToEndFromIr) {
  // IR -> select -> place -> Verilog for a small pipeline.
  Result<ir::Function> Fn = ir::parseFunction(R"(
    def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )");
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  Result<rasm::AsmProgram> Asm = isel::select(Fn.value(), tdl::ultrascale());
  ASSERT_TRUE(Asm.ok()) << Asm.error();
  Result<rasm::AsmProgram> Placed =
      place::place(Asm.value(), Device::tiny());
  ASSERT_TRUE(Placed.ok()) << Placed.error();
  Utilization Util;
  Result<verilog::Module> M =
      generate(Placed.value(), tdl::ultrascale(), Device::tiny(), &Util);
  ASSERT_TRUE(M.ok()) << M.error();
  // muladdreg fuses everything into a single DSP.
  EXPECT_EQ(Util.Dsps, 1u);
  EXPECT_EQ(Util.Luts, 0u);
  std::string Out = M.value().str();
  EXPECT_NE(Out.find(".PREG(1'h1)"), std::string::npos);
  EXPECT_NE(Out.find(".CEP(en)"), std::string::npos);
}

TEST(Codegen, OutputSameAsInputRejected) {
  verilog::Module M("unused");
  Result<AsmProgram> P = rasm::parseAsmProgram(
      "def f(a:i8) -> (a:i8) { t:i8 = id(a); }");
  ASSERT_TRUE(P.ok()) << P.error();
  Result<verilog::Module> Out =
      generate(P.value(), tdl::ultrascale(), Device::tiny());
  ASSERT_FALSE(Out.ok());
  EXPECT_NE(Out.error().find("conflicts"), std::string::npos);
}

TEST(Codegen, ComparatorEmitsCarryChain) {
  Utilization Util;
  compileAsm(
      "def f(a:i8, b:i8) -> (y:bool) { y:bool = lt(a, b) @lut(?\?, ?\?); }",
      Device::tiny(), &Util);
  EXPECT_GE(Util.Luts, 8u);
  EXPECT_GE(Util.Carries, 1u);
}
