//===- tests/portability_test.cpp - Cross-family retargeting -------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// The intermediate language is portable across FPGA families: the same
/// program retargets by swapping the target description (Sections 3 and
/// 4.2). These tests compile the paper's workloads against both the
/// UltraScale-like family and the Stratix-like family (no DSP SIMD ALU)
/// and check that each target's selection reflects its own hardware,
/// while semantics — validated through the target's own instruction
/// definitions — stay identical.
///
//===----------------------------------------------------------------------===//

#include "frontend/Benchmarks.h"
#include "interp/Interp.h"
#include "isel/Cascade.h"
#include "isel/Select.h"
#include "ir/Parser.h"
#include "place/Place.h"
#include "rasm/ToIr.h"
#include "tdl/Ultrascale.h"
#include "timing/Timing.h"

#include <gtest/gtest.h>

#include <random>

using namespace reticle;
using device::Device;

namespace {

ir::Function parseOk(const char *Source) {
  Result<ir::Function> Fn = ir::parseFunction(Source);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  return Fn.take();
}

} // namespace

TEST(Portability, StratixTargetParses) {
  const tdl::Target &T = tdl::stratix();
  EXPECT_GT(T.defs().size(), 100u);
  // Scalar DSP ops exist; vector DSP ops do not.
  std::vector<ir::Type> I8x2 = {ir::Type::makeInt(8), ir::Type::makeInt(8)};
  EXPECT_NE(T.resolve("add", ir::Resource::Dsp, I8x2, ir::Type::makeInt(8)),
            nullptr);
  ir::Type V = ir::Type::makeInt(8, 4);
  EXPECT_EQ(T.resolve("add", ir::Resource::Dsp, {V, V}, V), nullptr);
  EXPECT_NE(T.resolve("add", ir::Resource::Lut, {V, V}, V), nullptr);
  // Accumulation chains exist (chainin/chainout as cascade variants).
  std::vector<ir::Type> I8x3 = {ir::Type::makeInt(8), ir::Type::makeInt(8),
                                ir::Type::makeInt(8)};
  EXPECT_NE(T.resolve("muladd_co", ir::Resource::Dsp, I8x3,
                      ir::Type::makeInt(8)),
            nullptr);
}

TEST(Portability, VectorAddRetargetsToSoftLogic) {
  // The same program: SIMD DSP on UltraScale, LUT fabric on Stratix.
  ir::Function Fn = parseOk(
      "def f(a:i8<4>, b:i8<4>) -> (y:i8<4>) { y:i8<4> = add(a, b) @??; }");
  Result<rasm::AsmProgram> Ultra = isel::select(Fn, tdl::ultrascale());
  Result<rasm::AsmProgram> Strat = isel::select(Fn, tdl::stratix());
  ASSERT_TRUE(Ultra.ok()) << Ultra.error();
  ASSERT_TRUE(Strat.ok()) << Strat.error();
  EXPECT_EQ(Ultra.value().body()[0].loc().Prim, ir::Resource::Dsp);
  EXPECT_EQ(Strat.value().body()[0].loc().Prim, ir::Resource::Lut);
}

TEST(Portability, HardDspConstraintRejectsOnLimitedFamily) {
  // Forcing the vector add onto a DSP is satisfiable on UltraScale and a
  // compile-time error on the Stratix-like family — never a silent
  // degradation.
  ir::Function Fn = parseOk(
      "def f(a:i8<4>, b:i8<4>) -> (y:i8<4>) { y:i8<4> = add(a, b) @dsp; }");
  EXPECT_TRUE(isel::select(Fn, tdl::ultrascale()).ok());
  Result<rasm::AsmProgram> Strat = isel::select(Fn, tdl::stratix());
  ASSERT_FALSE(Strat.ok());
  EXPECT_NE(Strat.error().find("unsatisfiable"), std::string::npos);
}

TEST(Portability, DotProductChainsCascadeOnBothFamilies) {
  ir::Function Fn = frontend::makeTensorDot(4, /*Rows=*/1);
  for (const tdl::Target *T : {&tdl::ultrascale(), &tdl::stratix()}) {
    Result<rasm::AsmProgram> Asm = isel::select(Fn, *T);
    ASSERT_TRUE(Asm.ok()) << T->name() << ": " << Asm.error();
    rasm::AsmProgram Prog = Asm.take();
    isel::CascadeStats Stats;
    ASSERT_TRUE(isel::cascadePass(Prog, *T, 64, &Stats).ok());
    EXPECT_EQ(Stats.Chains, 1u) << T->name();
    // Place on the family's own device and verify the constraints hold.
    const Device Dev = T == &tdl::ultrascale() ? Device::xczu3eg()
                                               : Device::stratixLike();
    Result<rasm::AsmProgram> Placed = place::place(Prog, Dev);
    ASSERT_TRUE(Placed.ok()) << T->name() << ": " << Placed.error();
    EXPECT_TRUE(place::checkPlacement(Prog, Placed.value(), Dev).ok());
    Result<timing::TimingReport> Timing =
        timing::analyzeAsm(Placed.value(), *T, Dev);
    ASSERT_TRUE(Timing.ok()) << Timing.error();
    EXPECT_GT(Timing.value().FmaxMhz, 0.0);
  }
}

TEST(Portability, SemanticsAgreeAcrossFamilies) {
  // Translation validation against both targets: each family's selected
  // assembly, expanded through that family's own instruction
  // definitions, must compute the same traces.
  std::mt19937_64 Rng(99);
  ir::Function Fn = frontend::makeTensorAdd(8, /*BindDsp=*/false);
  interp::Trace Input;
  std::uniform_int_distribution<int64_t> D(-128, 127);
  for (int C = 0; C < 3; ++C) {
    interp::Step &S = Input.appendStep();
    for (const ir::Port &P : Fn.inputs()) {
      std::vector<int64_t> Lanes;
      for (unsigned L = 0; L < P.Ty.lanes(); ++L)
        Lanes.push_back(D(Rng));
      S[P.Name] = interp::Value::fromLanes(P.Ty, std::move(Lanes));
    }
  }
  Result<interp::Trace> Reference = interp::interpret(Fn, Input);
  ASSERT_TRUE(Reference.ok()) << Reference.error();
  for (const tdl::Target *T : {&tdl::ultrascale(), &tdl::stratix()}) {
    Result<rasm::AsmProgram> Asm = isel::select(Fn, *T);
    ASSERT_TRUE(Asm.ok()) << T->name() << ": " << Asm.error();
    Result<ir::Function> Lowered = rasm::toIr(Asm.value(), *T);
    ASSERT_TRUE(Lowered.ok()) << Lowered.error();
    Result<interp::Trace> Got = interp::interpret(Lowered.value(), Input);
    ASSERT_TRUE(Got.ok()) << Got.error();
    EXPECT_EQ(Got.value(), Reference.value()) << T->name();
  }
}

TEST(Portability, StratixDeviceGeometry) {
  Device D = Device::stratixLike();
  EXPECT_EQ(D.lutsPerSlice(), 10u);
  EXPECT_EQ(D.numDsps(), 168u);
  EXPECT_EQ(D.numLuts(), 36000u);
}
