//===- tests/verilog_test.cpp - Verilog AST tests -------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "verilog/Ast.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::verilog;

TEST(VerilogExpr, Rendering) {
  EXPECT_EQ(Expr::ref("a").str(), "a");
  EXPECT_EQ(Expr::intLit(4, 8).str(), "4'h8");
  EXPECT_EQ(Expr::str("FOUR12").str(), "\"FOUR12\"");
  EXPECT_EQ(Expr::index(Expr::ref("a"), 3).str(), "a[3]");
  EXPECT_EQ(Expr::range(Expr::ref("a"), 7, 0).str(), "a[7:0]");
  EXPECT_EQ(Expr::concat({Expr::ref("b"), Expr::ref("a")}).str(), "{b, a}");
  EXPECT_EQ(Expr::repeat(3, Expr::ref("s")).str(), "{3{s}}");
  EXPECT_EQ(Expr::unary("~", Expr::ref("a")).str(), "(~a)");
  EXPECT_EQ(Expr::binary("&", Expr::ref("a"), Expr::ref("b")).str(),
            "(a & b)");
  EXPECT_EQ(
      Expr::ternary(Expr::ref("c"), Expr::ref("a"), Expr::ref("b")).str(),
      "(c ? a : b)");
}

TEST(VerilogModule, PaperFigure2bStructuralAnd) {
  // Figure 2b: a LUT2 implementing a 1-bit and.
  Module M("bit_and");
  M.addPort(Dir::Input, "a");
  M.addPort(Dir::Input, "b");
  M.addPort(Dir::Output, "y");
  Item &I = M.addInstance("LUT2", "i0");
  I.Params.push_back({"INIT", Expr::intLit(4, 0x8)});
  I.Connections.push_back({"I0", Expr::ref("a")});
  I.Connections.push_back({"I1", Expr::ref("b")});
  I.Connections.push_back({"O", Expr::ref("y")});
  std::string Out = M.str();
  EXPECT_NE(Out.find("module bit_and("), std::string::npos);
  EXPECT_NE(Out.find("LUT2 # (.INIT(4'h8))"), std::string::npos);
  EXPECT_NE(Out.find(".I0(a), .I1(b), .O(y)"), std::string::npos);
  EXPECT_NE(Out.find("endmodule"), std::string::npos);
}

TEST(VerilogModule, Figure2cLayoutAttributes) {
  // Figure 2c: LOC and BEL attributes on the instance.
  Module M("bit_and");
  M.addPort(Dir::Input, "a");
  M.addPort(Dir::Input, "b");
  M.addPort(Dir::Output, "y");
  Item &I = M.addInstance("LUT2", "i0");
  I.Attributes.push_back({"LOC", "SLICE_X0Y0"});
  I.Attributes.push_back({"BEL", "A6LUT"});
  I.Params.push_back({"INIT", Expr::intLit(4, 0x8)});
  I.Connections.push_back({"I0", Expr::ref("a")});
  I.Connections.push_back({"I1", Expr::ref("b")});
  I.Connections.push_back({"O", Expr::ref("y")});
  std::string Out = M.str();
  EXPECT_NE(Out.find("(* LOC = \"SLICE_X0Y0\" *)"), std::string::npos);
  EXPECT_NE(Out.find("(* BEL = \"A6LUT\" *)"), std::string::npos);
}

TEST(VerilogModule, WidthsAndWires) {
  Module M("m");
  M.addPort(Dir::Input, "a", 8);
  M.addPort(Dir::Output, "y", 8);
  M.addWire("t", 16);
  M.addWire("s"); // scalar
  M.addAssign(Expr::ref("y"), Expr::range(Expr::ref("t"), 7, 0));
  std::string Out = M.str();
  EXPECT_NE(Out.find("input [7:0] a"), std::string::npos);
  EXPECT_NE(Out.find("wire [15:0] t;"), std::string::npos);
  EXPECT_NE(Out.find("wire s;"), std::string::npos);
  EXPECT_NE(Out.find("assign y = t[7:0];"), std::string::npos);
}

TEST(VerilogModule, AlwaysFFBlock) {
  Module M("m");
  M.addPort(Dir::Input, "clock");
  M.addPort(Dir::Input, "en");
  Item &A = M.addAlwaysFF("clock");
  NonBlocking S;
  S.GuardName = "en";
  S.Lhs = Expr::ref("q");
  S.Rhs = Expr::ref("d");
  A.Body.push_back(S);
  std::string Out = M.str();
  EXPECT_NE(Out.find("always @(posedge clock) begin"), std::string::npos);
  EXPECT_NE(Out.find("if (en) q <= d;"), std::string::npos);
}

TEST(VerilogModule, CountInstances) {
  Module M("m");
  M.addInstance("LUT2", "i0");
  M.addInstance("LUT6", "i1");
  M.addInstance("DSP48E2", "i2");
  M.addInstance("CARRY8", "i3");
  EXPECT_EQ(M.countInstances("LUT"), 2u);
  EXPECT_EQ(M.countInstances("DSP48E2"), 1u);
  EXPECT_EQ(M.countInstances("CARRY8"), 1u);
  EXPECT_EQ(M.countInstances("FDRE"), 0u);
}
