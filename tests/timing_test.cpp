//===- tests/timing_test.cpp - Static timing analysis tests --------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "timing/Timing.h"

#include "place/Place.h"
#include "rasm/AsmParser.h"
#include "tdl/Ultrascale.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::timing;
using device::Device;
using rasm::AsmProgram;

namespace {

TimingReport analyzeSource(const char *Source,
                           const Device &Dev = Device::small()) {
  Result<AsmProgram> P = rasm::parseAsmProgram(Source);
  EXPECT_TRUE(P.ok()) << P.error();
  Result<AsmProgram> Placed = place::place(P.value(), Dev);
  EXPECT_TRUE(Placed.ok()) << Placed.error();
  Result<TimingReport> R = analyzeAsm(Placed.value(), tdl::ultrascale(), Dev);
  EXPECT_TRUE(R.ok()) << R.error();
  return R.take();
}

} // namespace

TEST(TimingGraph, SingleNodePath) {
  TimingGraph G;
  TimingNode In;
  In.Name = "a";
  size_t A = G.addNode(In);
  TimingNode Op;
  Op.Name = "add";
  Op.Delay = 0.5;
  size_t B = G.addNode(Op);
  G.addEdge(A, B);
  Result<TimingReport> R = G.analyze();
  ASSERT_TRUE(R.ok()) << R.error();
  // RouteBase (no positions) + 0.5.
  EXPECT_NEAR(R.value().CriticalPathNs, 0.35 + 0.5, 1e-9);
}

TEST(TimingGraph, RegisteredOutputsCutPaths) {
  TimingGraph G;
  TimingNode A;
  A.Name = "slow";
  A.Delay = 10.0;
  A.RegisteredOutput = true;
  size_t IdA = G.addNode(A);
  TimingNode B;
  B.Name = "fast";
  B.Delay = 0.1;
  size_t IdB = G.addNode(B);
  G.addEdge(IdA, IdB);
  Result<TimingReport> R = G.analyze();
  ASSERT_TRUE(R.ok()) << R.error();
  // Path 1 ends at the register: 10.0 + setup. Path 2 launches at Tcq.
  EXPECT_NEAR(R.value().CriticalPathNs, 10.0 + 0.05, 1e-9);
}

TEST(TimingGraph, RegisteredFeedbackIsNotACycle) {
  TimingGraph G;
  TimingNode A;
  A.Name = "acc";
  A.Delay = 0.5;
  A.RegisteredOutput = true;
  size_t IdA = G.addNode(A);
  G.addEdge(IdA, IdA); // self-loop through the register
  Result<TimingReport> R = G.analyze();
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_NEAR(R.value().CriticalPathNs, 0.10 + 0.35 + 0.5 + 0.05, 1e-9);
}

TEST(TimingGraph, CombinationalCycleRejected) {
  TimingGraph G;
  TimingNode A;
  A.Delay = 0.1;
  size_t IdA = G.addNode(A);
  TimingNode B;
  B.Delay = 0.1;
  size_t IdB = G.addNode(B);
  G.addEdge(IdA, IdB);
  G.addEdge(IdB, IdA);
  EXPECT_FALSE(G.analyze().ok());
}

TEST(TimingGraph, RoutingScalesWithDistance) {
  DelayModel M;
  auto PathFor = [&](int Dx) {
    TimingGraph G(M);
    TimingNode A;
    A.HasPosition = true;
    A.X = 0;
    A.Y = 0;
    size_t IdA = G.addNode(A);
    TimingNode B;
    B.HasPosition = true;
    B.X = Dx;
    B.Y = 0;
    B.Delay = 0.2;
    size_t IdB = G.addNode(B);
    G.addEdge(IdA, IdB);
    return G.analyze().value().CriticalPathNs;
  };
  EXPECT_LT(PathFor(1), PathFor(50));
  EXPECT_NEAR(PathFor(50) - PathFor(1), 49 * M.RoutePerUnit, 1e-9);
}

TEST(TimingAsm, DspFasterThanLutForWideAdd) {
  TimingReport Dsp = analyzeSource(
      "def f(a:i8<4>, b:i8<4>) -> (y:i8<4>) "
      "{ y:i8<4> = add(a, b) @dsp(?\?, ?\?); }");
  TimingReport Lut = analyzeSource(
      "def f(a:i8<4>, b:i8<4>) -> (y:i8<4>) "
      "{ y:i8<4> = add(a, b) @lut(?\?, ?\?); }");
  // A single DSP op beats a multi-lane LUT carry structure... except a
  // single 8-bit LUT lane is actually cheap; what matters for the paper's
  // comparison is chains, checked below. Here both must simply be sane.
  EXPECT_GT(Dsp.CriticalPathNs, 0.0);
  EXPECT_GT(Lut.CriticalPathNs, 0.0);
}

TEST(TimingAsm, CascadeBeatsGeneralRouting) {
  const char *Cascaded = R"(
    def dot(a:i8, b:i8, c:i8, d:i8, in:i8) -> (t1:i8) {
      t0:i8 = muladd_co(a, b, in) @dsp(x, y);
      t1:i8 = muladd_ci(c, d, t0) @dsp(x, y+1);
    }
  )";
  const char *Plain = R"(
    def dot(a:i8, b:i8, c:i8, d:i8, in:i8) -> (t1:i8) {
      t0:i8 = muladd(a, b, in) @dsp(??, ??);
      t1:i8 = muladd(c, d, t0) @dsp(??, ??);
    }
  )";
  TimingReport WithCascade = analyzeSource(Cascaded);
  TimingReport Without = analyzeSource(Plain);
  EXPECT_LT(WithCascade.CriticalPathNs, Without.CriticalPathNs);
}

TEST(TimingAsm, PipeliningShortensCriticalPath) {
  const char *Combinational = R"(
    def f(a:i8, b:i8, c:i8) -> (t1:i8) {
      t0:i8 = mul(a, b) @dsp(??, ??);
      t1:i8 = muladd(a, t0, c) @dsp(??, ??);
    }
  )";
  const char *Pipelined = R"(
    def f(a:i8, b:i8, c:i8, en:bool) -> (t1:i8) {
      t0:i8 = mulreg(a, b, en) @dsp(??, ??);
      t1:i8 = muladdreg(a, t0, c, en) @dsp(??, ??);
    }
  )";
  TimingReport Comb = analyzeSource(Combinational);
  TimingReport Piped = analyzeSource(Pipelined);
  EXPECT_LT(Piped.CriticalPathNs, Comb.CriticalPathNs);
}

TEST(TimingAsm, WireOpsAddNoDelay) {
  TimingReport Direct = analyzeSource(
      "def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @lut(0, 0); }",
      Device::tiny());
  TimingReport Shifted = analyzeSource(R"(
    def f(a:i8, b:i8) -> (y:i8) {
      t0:i8 = sll[1](a);
      y:i8 = add(t0, b) @lut(0, 0);
    }
  )",
                                       Device::tiny());
  EXPECT_NEAR(Direct.CriticalPathNs, Shifted.CriticalPathNs, 1e-9);
}

TEST(TimingAsm, ReportsFmaxAndPath) {
  TimingReport R = analyzeSource(
      "def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @dsp(?\?, ?\?); }");
  EXPECT_GT(R.FmaxMhz, 0.0);
  EXPECT_FALSE(R.Path.empty());
  EXPECT_EQ(R.Path.back(), "y");
}
