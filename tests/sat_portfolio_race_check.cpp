//===- tests/sat_portfolio_race_check.cpp - Portfolio determinism check ---------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// A plain-main (no gtest) check that the clause-sharing SAT portfolio is
/// deterministic: two races over the same formula pick the same winner
/// lane, the same outcome, and the same model, and both agree with a
/// single-threaded reference solver's verdict. Built without a test
/// framework so it can also be compiled under ThreadSanitizer, where it
/// serves as the data-race detector for the lane threads and the bounded
/// clause-export buffers (see scripts/check.sh).
///
/// The formulas are pigeonhole instances: PHP(n+1, n) is UNSAT and needs
/// real conflict-driven search (so the lanes genuinely learn and exchange
/// clauses), and PHP(n, n) is SAT with many symmetric models (so a
/// scheduling-dependent winner would almost surely surface as a model
/// mismatch between runs).
///
/// Exit code 0 on success, 1 on any mismatch.
///
//===----------------------------------------------------------------------===//

#include "sat/Portfolio.h"
#include "sat/Solver.h"

#include <cstdio>
#include <vector>

using namespace reticle;

namespace {

int Failures = 0;

void check(bool Ok, const char *What) {
  if (!Ok) {
    std::fprintf(stderr, "sat_portfolio_race_check: FAILED: %s\n", What);
    ++Failures;
  }
}

/// Pigeonhole: every pigeon in some hole, no hole holds two pigeons.
/// Var(p, h) = p * Holes + h.
template <typename SolverT>
std::vector<std::vector<sat::Var>> encodePigeonhole(SolverT &S,
                                                    unsigned Pigeons,
                                                    unsigned Holes) {
  std::vector<std::vector<sat::Var>> V(Pigeons);
  for (unsigned P = 0; P < Pigeons; ++P)
    for (unsigned H = 0; H < Holes; ++H)
      V[P].push_back(S.newVar());
  for (unsigned P = 0; P < Pigeons; ++P) {
    std::vector<sat::Lit> AtLeastOne;
    for (unsigned H = 0; H < Holes; ++H)
      AtLeastOne.push_back(sat::Lit(V[P][H]));
    S.addClause(AtLeastOne);
  }
  for (unsigned H = 0; H < Holes; ++H)
    for (unsigned P1 = 0; P1 < Pigeons; ++P1)
      for (unsigned P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addBinary(~sat::Lit(V[P1][H]), ~sat::Lit(V[P2][H]));
  return V;
}

struct RaceResult {
  sat::Outcome O = sat::Outcome::Unknown;
  unsigned Winner = 0;
  uint64_t Rounds = 0;
  std::vector<bool> Model;
};

RaceResult race(unsigned Pigeons, unsigned Holes, unsigned Lanes) {
  sat::Portfolio::Options Opts;
  Opts.Lanes = Lanes;
  Opts.RoundConflicts = 64; // small quantum: force several exchange rounds
  sat::Portfolio Port(Opts);
  std::vector<std::vector<sat::Var>> V =
      encodePigeonhole(Port, Pigeons, Holes);
  RaceResult R;
  R.O = Port.solveWith({});
  R.Winner = Port.winnerLane();
  R.Rounds = Port.stats().Rounds;
  if (R.O == sat::Outcome::Sat)
    for (unsigned P = 0; P < Pigeons; ++P)
      for (unsigned H = 0; H < Holes; ++H)
        R.Model.push_back(Port.value(V[P][H]));
  return R;
}

sat::Outcome reference(unsigned Pigeons, unsigned Holes) {
  sat::Solver S;
  encodePigeonhole(S, Pigeons, Holes);
  return S.solve();
}

void checkRace(unsigned Pigeons, unsigned Holes, unsigned Lanes,
               const char *What) {
  RaceResult A = race(Pigeons, Holes, Lanes);
  RaceResult B = race(Pigeons, Holes, Lanes);
  check(A.O == B.O, "outcome differs between identical races");
  check(A.Winner == B.Winner, "winner lane differs between identical races");
  check(A.Rounds == B.Rounds, "round count differs between identical races");
  check(A.Model == B.Model, "model differs between identical races");
  check(A.O == reference(Pigeons, Holes),
        "portfolio verdict differs from the reference solver");
  std::fprintf(stderr,
               "sat_portfolio_race_check: %s: outcome=%s winner=%u "
               "rounds=%llu\n",
               What,
               A.O == sat::Outcome::Sat
                   ? "sat"
                   : A.O == sat::Outcome::Unsat ? "unsat" : "unknown",
               A.Winner, static_cast<unsigned long long>(A.Rounds));
}

} // namespace

int main() {
  // UNSAT with real search: 7 pigeons, 6 holes burns hundreds of
  // conflicts, so every lane crosses several exchange barriers.
  checkRace(7, 6, 4, "php(7,6) x4");
  // SAT with massive symmetry: any nondeterminism in winner selection
  // would pick different (equally valid) models run to run.
  checkRace(7, 7, 4, "php(7,7) x4");
  // A one-lane portfolio must behave like the plain solver.
  checkRace(6, 5, 1, "php(6,5) x1");

  if (Failures) {
    std::fprintf(stderr, "sat_portfolio_race_check: %d failure(s)\n",
                 Failures);
    return 1;
  }
  std::fprintf(stderr, "sat_portfolio_race_check: ok\n");
  return 0;
}
