//===- tests/tv_test.cpp - Translation validation for selection ----------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Property test: for random well-formed IR programs, the selected assembly
/// program (expanded back to IR through the target-description semantics)
/// must produce the same output trace as the source program on random
/// input traces. This validates instruction selection end to end against
/// the interpreter oracle of Section 6.2.
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "ir/Parser.h"
#include "isel/Cascade.h"
#include "isel/Select.h"
#include "ir/Verifier.h"
#include "rasm/ToIr.h"
#include "tdl/Ultrascale.h"

#include <gtest/gtest.h>

#include <random>

using namespace reticle;
using interp::Trace;
using interp::Value;
using ir::Function;
using ir::Type;

namespace {

/// Builds a random well-formed program over i8, bool, and i8<4> values.
Function randomProgram(std::mt19937 &Rng, unsigned NumInstrs) {
  Function Fn("rnd");
  Type I8 = Type::makeInt(8);
  Type V8 = Type::makeInt(8, 4);
  Type B = Type::makeBool();

  std::vector<std::string> I8Vars = {"a0", "a1"};
  std::vector<std::string> BoolVars = {"en"};
  std::vector<std::string> V8Vars = {"v0"};
  Fn.addInput("a0", I8);
  Fn.addInput("a1", I8);
  Fn.addInput("en", B);
  Fn.addInput("v0", V8);

  auto Pick = [&](std::vector<std::string> &Pool) {
    std::uniform_int_distribution<size_t> D(0, Pool.size() - 1);
    return Pool[D(Rng)];
  };
  std::uniform_int_distribution<int> OpDist(0, 11);
  std::uniform_int_distribution<int64_t> ConstDist(-128, 127);

  for (unsigned I = 0; I < NumInstrs; ++I) {
    std::string Dst = "t" + std::to_string(I);
    switch (OpDist(Rng)) {
    case 0:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Add,
                                      {Pick(I8Vars), Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    case 1:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Mul,
                                      {Pick(I8Vars), Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    case 2:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Sub,
                                      {Pick(I8Vars), Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    case 3:
      Fn.addInstr(ir::Instr::makeComp(Dst, B, ir::CompOp::Lt,
                                      {Pick(I8Vars), Pick(I8Vars)}));
      BoolVars.push_back(Dst);
      break;
    case 4:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Mux,
                                      {Pick(BoolVars), Pick(I8Vars),
                                       Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    case 5:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Reg,
                                      {Pick(I8Vars), Pick(BoolVars)},
                                      {ConstDist(Rng)}));
      I8Vars.push_back(Dst);
      break;
    case 6:
      Fn.addInstr(ir::Instr::makeComp(Dst, V8, ir::CompOp::Add,
                                      {Pick(V8Vars), Pick(V8Vars)}));
      V8Vars.push_back(Dst);
      break;
    case 7:
      Fn.addInstr(ir::Instr::makeComp(Dst, B, ir::CompOp::And,
                                      {Pick(BoolVars), Pick(BoolVars)}));
      BoolVars.push_back(Dst);
      break;
    case 8:
      Fn.addInstr(ir::Instr::makeWire(Dst, I8, ir::WireOp::Sll, {1},
                                      {Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    case 9:
      Fn.addInstr(ir::Instr::makeWire(Dst, I8, ir::WireOp::Const,
                                      {ConstDist(Rng)}));
      I8Vars.push_back(Dst);
      break;
    case 10:
      Fn.addInstr(ir::Instr::makeComp(Dst, I8, ir::CompOp::Xor,
                                      {Pick(I8Vars), Pick(I8Vars)}));
      I8Vars.push_back(Dst);
      break;
    default:
      Fn.addInstr(ir::Instr::makeComp(Dst, V8, ir::CompOp::Reg,
                                      {Pick(V8Vars), Pick(BoolVars)},
                                      {ConstDist(Rng)}));
      V8Vars.push_back(Dst);
      break;
    }
  }
  // Outputs: the most recent value of each class.
  Fn.addOutput(I8Vars.back(), I8);
  if (V8Vars.size() > 1)
    Fn.addOutput(V8Vars.back(), V8);
  if (BoolVars.size() > 1)
    Fn.addOutput(BoolVars.back(), B);
  return Fn;
}

Trace randomTrace(std::mt19937 &Rng, const Function &Fn, size_t Cycles) {
  Trace T;
  std::uniform_int_distribution<int64_t> D(-128, 127);
  for (size_t C = 0; C < Cycles; ++C) {
    interp::Step &S = T.appendStep();
    for (const ir::Port &P : Fn.inputs()) {
      std::vector<int64_t> Lanes;
      for (unsigned L = 0; L < P.Ty.lanes(); ++L)
        Lanes.push_back(D(Rng));
      S[P.Name] = Value::fromLanes(P.Ty, std::move(Lanes));
    }
  }
  return T;
}

} // namespace

class TranslationValidation : public ::testing::TestWithParam<unsigned> {};

TEST_P(TranslationValidation, SelectionPreservesSemantics) {
  std::mt19937 Rng(GetParam() * 7919 + 13);
  unsigned NumInstrs = 4 + GetParam() % 20;
  Function Fn = randomProgram(Rng, NumInstrs);
  ASSERT_TRUE(ir::verify(Fn).ok()) << Fn.str();

  Result<rasm::AsmProgram> Asm = isel::select(Fn, tdl::ultrascale());
  ASSERT_TRUE(Asm.ok()) << Asm.error() << "\n" << Fn.str();

  Result<ir::Function> Lowered = rasm::toIr(Asm.value(), tdl::ultrascale());
  ASSERT_TRUE(Lowered.ok()) << Lowered.error() << "\n" << Asm.value().str();
  ASSERT_TRUE(ir::verify(Lowered.value()).ok())
      << Lowered.value().str();

  Trace Input = randomTrace(Rng, Fn, 6);
  Result<Trace> Expected = interp::interpret(Fn, Input);
  ASSERT_TRUE(Expected.ok()) << Expected.error();
  Result<Trace> Got = interp::interpret(Lowered.value(), Input);
  ASSERT_TRUE(Got.ok()) << Got.error();
  ASSERT_EQ(Expected.value().size(), Got.value().size());
  for (size_t C = 0; C < Expected.value().size(); ++C)
    for (const ir::Port &P : Fn.outputs()) {
      const Value *E = Expected.value().get(C, P.Name);
      const Value *G = Got.value().get(C, P.Name);
      ASSERT_NE(E, nullptr);
      ASSERT_NE(G, nullptr);
      EXPECT_EQ(*E, *G) << "cycle " << C << " output " << P.Name << "\nIR:\n"
                        << Fn.str() << "\nASM:\n" << Asm.value().str();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslationValidation,
                         ::testing::Range(0u, 40u));

TEST(TranslationValidationCascade, CascadePreservesSemantics) {
  // A dot-product chain: selection plus the cascade rewrite must preserve
  // the trace semantics.
  std::string Source = "def dot(in:i8";
  for (int I = 0; I < 6; ++I)
    Source += ", a" + std::to_string(I) + ":i8, b" + std::to_string(I) +
              ":i8";
  Source += ") -> (t5:i8) {\n";
  std::string Prev = "in";
  for (int I = 0; I < 6; ++I) {
    Source += "  m" + std::to_string(I) + ":i8 = mul(a" + std::to_string(I) +
              ", b" + std::to_string(I) + ") @??;\n";
    Source += "  t" + std::to_string(I) + ":i8 = add(m" + std::to_string(I) +
              ", " + Prev + ") @??;\n";
    Prev = "t" + std::to_string(I);
  }
  Source += "}\n";
  Result<Function> Fn = ir::parseFunction(Source);
  ASSERT_TRUE(Fn.ok()) << Fn.error();

  Result<rasm::AsmProgram> Asm = isel::select(Fn.value(), tdl::ultrascale());
  ASSERT_TRUE(Asm.ok()) << Asm.error();
  rasm::AsmProgram Prog = Asm.take();
  isel::CascadeStats Stats;
  ASSERT_TRUE(isel::cascadePass(Prog, tdl::ultrascale(), 64, &Stats).ok());
  EXPECT_GE(Stats.Rewritten, 2u);

  Result<ir::Function> Lowered = rasm::toIr(Prog, tdl::ultrascale());
  ASSERT_TRUE(Lowered.ok()) << Lowered.error();

  std::mt19937 Rng(42);
  Trace Input = randomTrace(Rng, Fn.value(), 4);
  Result<Trace> Expected = interp::interpret(Fn.value(), Input);
  Result<Trace> Got = interp::interpret(Lowered.value(), Input);
  ASSERT_TRUE(Expected.ok()) << Expected.error();
  ASSERT_TRUE(Got.ok()) << Got.error();
  EXPECT_EQ(Expected.value(), Got.value());
}
