//===- tests/lexer_test.cpp - Lexer unit tests ------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/Lexer.h"

#include <gtest/gtest.h>

using namespace reticle;

TEST(Lexer, TokenizesInstructionSyntax) {
  Lexer Lex("t2:i8 = add(t0, t1) @??;");
  EXPECT_TRUE(Lex.ok());
  EXPECT_TRUE(Lex.atIdent("t2"));
  Lex.next();
  EXPECT_TRUE(Lex.accept(TokenKind::Colon));
  EXPECT_TRUE(Lex.atIdent("i8"));
  Lex.next();
  EXPECT_TRUE(Lex.accept(TokenKind::Equal));
  EXPECT_TRUE(Lex.atIdent("add"));
  Lex.next();
  EXPECT_TRUE(Lex.accept(TokenKind::LParen));
  Lex.next(); // t0
  EXPECT_TRUE(Lex.accept(TokenKind::Comma));
  Lex.next(); // t1
  EXPECT_TRUE(Lex.accept(TokenKind::RParen));
  EXPECT_TRUE(Lex.accept(TokenKind::At));
  EXPECT_TRUE(Lex.accept(TokenKind::Wildcard));
  EXPECT_TRUE(Lex.accept(TokenKind::Semi));
  EXPECT_TRUE(Lex.at(TokenKind::Eof));
}

TEST(Lexer, NegativeIntegersAndArrow) {
  Lexer Lex("const[-5] -> x");
  EXPECT_TRUE(Lex.ok());
  Lex.next(); // const
  EXPECT_TRUE(Lex.accept(TokenKind::LBracket));
  ASSERT_TRUE(Lex.at(TokenKind::Int));
  EXPECT_EQ(Lex.next().IntValue, -5);
  EXPECT_TRUE(Lex.accept(TokenKind::RBracket));
  EXPECT_TRUE(Lex.accept(TokenKind::Arrow));
  // A bare '-' (not arrow, not a negative literal start) is a stray char.
  Lexer Stray("x - 3");
  EXPECT_FALSE(Stray.ok());
}

TEST(Lexer, CommentsAreSkipped) {
  Lexer Lex("a // trailing comment with symbols $%^\nb");
  EXPECT_TRUE(Lex.ok());
  EXPECT_TRUE(Lex.atIdent("a"));
  Lex.next();
  EXPECT_TRUE(Lex.atIdent("b"));
  Lex.next();
  EXPECT_TRUE(Lex.at(TokenKind::Eof));
}

TEST(Lexer, HoleVersusIdentifier) {
  Lexer Lex("_ _x x_y");
  EXPECT_TRUE(Lex.ok());
  EXPECT_TRUE(Lex.accept(TokenKind::Hole));
  EXPECT_TRUE(Lex.atIdent("_x"));
  Lex.next();
  EXPECT_TRUE(Lex.atIdent("x_y"));
}

TEST(Lexer, TracksLinesAndColumns) {
  Lexer Lex("a\n  b");
  EXPECT_EQ(Lex.peek().Line, 1u);
  EXPECT_EQ(Lex.peek().Col, 1u);
  Lex.next();
  EXPECT_EQ(Lex.peek().Line, 2u);
  EXPECT_EQ(Lex.peek().Col, 3u);
}

TEST(Lexer, VectorTypePunctuation) {
  Lexer Lex("i8<4>");
  Lex.next(); // i8
  EXPECT_TRUE(Lex.accept(TokenKind::Less));
  ASSERT_TRUE(Lex.at(TokenKind::Int));
  EXPECT_EQ(Lex.next().IntValue, 4);
  EXPECT_TRUE(Lex.accept(TokenKind::Greater));
}

TEST(Lexer, StrayCharacterReportsLocation) {
  Lexer Lex("abc $");
  EXPECT_FALSE(Lex.ok());
  EXPECT_NE(Lex.error().find("stray character"), std::string::npos);
  EXPECT_NE(Lex.error().find("1:5"), std::string::npos);
}

TEST(Lexer, PeekAheadDoesNotConsume) {
  Lexer Lex("a b c");
  EXPECT_EQ(Lex.peek(2).Text, "c");
  EXPECT_EQ(Lex.peek().Text, "a");
  EXPECT_EQ(Lex.next().Text, "a");
  EXPECT_EQ(Lex.peek(5).Kind, TokenKind::Eof);
}
