//===- tests/ir_parser_test.cpp - IR parser/printer tests --------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::ir;

TEST(IrParser, ParsesPaperFigure6) {
  // Figure 6: computes 5 * 2 + 5 with a constant, a shift, and an add.
  const char *Source = R"(
    def fig6() -> (t2:i8) {
      t0:i8 = const[5];
      t1:i8 = sll[1](t0);
      t2:i8 = add(t0, t1) @??;
    }
  )";
  Result<Function> Fn = parseFunction(Source);
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  EXPECT_EQ(Fn.value().name(), "fig6");
  ASSERT_EQ(Fn.value().body().size(), 3u);
  const Instr &Const = Fn.value().body()[0];
  EXPECT_TRUE(Const.isWire());
  EXPECT_EQ(Const.wireOp(), WireOp::Const);
  ASSERT_EQ(Const.attrs().size(), 1u);
  EXPECT_EQ(Const.attrs()[0], 5);
  const Instr &Add = Fn.value().body()[2];
  EXPECT_TRUE(Add.isComp());
  EXPECT_EQ(Add.compOp(), CompOp::Add);
  EXPECT_EQ(Add.resource(), Resource::Any);
}

TEST(IrParser, ParsesResourceAnnotations) {
  const char *Source = R"(
    def f(a:i8, b:i8) -> (y:i8) {
      t0:i8 = add(a, b) @lut;
      y:i8 = mul(t0, b) @dsp;
    }
  )";
  Result<Function> Fn = parseFunction(Source);
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  EXPECT_EQ(Fn.value().body()[0].resource(), Resource::Lut);
  EXPECT_EQ(Fn.value().body()[1].resource(), Resource::Dsp);
}

TEST(IrParser, ParsesRegisterWithInit) {
  const char *Source = R"(
    def counter(en:bool) -> (y:i8) {
      t0:i8 = const[1];
      t1:i8 = add(y, t0) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )";
  Result<Function> Fn = parseFunction(Source);
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  const Instr &Reg = Fn.value().body()[2];
  EXPECT_TRUE(Reg.isReg());
  EXPECT_EQ(Reg.attrs()[0], 0);
  ASSERT_EQ(Reg.args().size(), 2u);
  EXPECT_EQ(Reg.args()[1], "en");
}

TEST(IrParser, ParsesVectorTypes) {
  const char *Source = R"(
    def vadd(a:i8<4>, b:i8<4>) -> (y:i8<4>) {
      y:i8<4> = add(a, b) @dsp;
    }
  )";
  Result<Function> Fn = parseFunction(Source);
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  EXPECT_EQ(Fn.value().inputs()[0].Ty, Type::makeInt(8, 4));
}

TEST(IrParser, PrintParseRoundTrip) {
  const char *Source = R"(
    def roundtrip(a:i8, b:i8, c:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @dsp;
      t1:i8 = const[-3];
      t2:i8 = add(t0, t1) @??;
      t3:i16 = cat(t2, a);
      t4:i8 = slice[8](t3);
      y:i8 = reg[7](t4, c) @lut;
    }
  )";
  Result<Function> First = parseFunction(Source);
  ASSERT_TRUE(First.ok()) << First.error();
  std::string Printed = First.value().str();
  Result<Function> Second = parseFunction(Printed);
  ASSERT_TRUE(Second.ok()) << Second.error() << "\n" << Printed;
  EXPECT_EQ(Second.value().str(), Printed);
}

TEST(IrParser, RejectsUnknownOperation) {
  Result<Function> Fn =
      parseFunction("def f(a:i8) -> (y:i8) { y:i8 = frobnicate(a); }");
  ASSERT_FALSE(Fn.ok());
  EXPECT_NE(Fn.error().find("unknown operation"), std::string::npos);
}

TEST(IrParser, RejectsResourceOnWireInstruction) {
  Result<Function> Fn =
      parseFunction("def f(a:i8) -> (y:i8) { y:i8 = id(a) @lut; }");
  ASSERT_FALSE(Fn.ok());
  EXPECT_NE(Fn.error().find("wire instruction"), std::string::npos);
}

TEST(IrParser, RejectsMissingOutputs) {
  Result<Function> Fn = parseFunction("def f(a:i8) -> () { }");
  ASSERT_FALSE(Fn.ok());
  EXPECT_NE(Fn.error().find("output"), std::string::npos);
}

TEST(IrParser, RejectsUnterminatedBody) {
  Result<Function> Fn = parseFunction("def f(a:i8) -> (y:i8) { y:i8 = id(a);");
  ASSERT_FALSE(Fn.ok());
}

TEST(IrParser, DefKeywordIsOptional) {
  Result<Function> Fn = parseFunction("f(a:i8) -> (y:i8) { y:i8 = id(a); }");
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  EXPECT_EQ(Fn.value().name(), "f");
}
