//===- tests/transforms_test.cpp - Optimization pass tests ----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "opt/Transforms.h"

#include "core/Compiler.h"
#include "interp/Interp.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <random>

using namespace reticle;
using namespace reticle::opt;
using interp::Trace;
using interp::Value;
using ir::Function;
using ir::Type;

namespace {

Function parseOk(const char *Source) {
  Result<Function> Fn = ir::parseFunction(Source);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  return Fn.take();
}

/// Interprets \p Fn over a random trace and returns the output trace.
Trace runRandom(const Function &Fn, unsigned Seed) {
  Trace Input;
  std::mt19937_64 Rng(Seed);
  std::uniform_int_distribution<int64_t> D(-128, 127);
  for (int C = 0; C < 4; ++C) {
    interp::Step &S = Input.appendStep();
    for (const ir::Port &P : Fn.inputs()) {
      std::vector<int64_t> Lanes;
      for (unsigned L = 0; L < P.Ty.lanes(); ++L)
        Lanes.push_back(D(Rng));
      S[P.Name] = Value::fromLanes(P.Ty, std::move(Lanes));
    }
  }
  Result<Trace> Out = interp::interpret(Fn, Input);
  EXPECT_TRUE(Out.ok()) << Out.error();
  return Out.take();
}

} // namespace

TEST(Dce, RemovesUnreachableInstructions) {
  Function Fn = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      dead1:i8 = add(a, a) @??;
      dead2:i8 = mul(dead1, a) @??;
      y:i8 = id(a);
    }
  )");
  EXPECT_EQ(deadCodeElim(Fn), 2u);
  EXPECT_EQ(Fn.body().size(), 1u);
  EXPECT_TRUE(ir::verify(Fn).ok());
}

TEST(Dce, KeepsRegisterFeedbackLoops) {
  Function Fn = parseOk(R"(
    def counter(en:bool) -> (t3:i8) {
      t1:i8 = const[4];
      t2:i8 = add(t3, t1) @??;
      t3:i8 = reg[0](t2, en) @??;
    }
  )");
  EXPECT_EQ(deadCodeElim(Fn), 0u);
  EXPECT_EQ(Fn.body().size(), 3u);
}

TEST(ConstFold, EvaluatesConstantSubexpressions) {
  // Figure 6's 5*2+5 collapses to the constant 15.
  Function Fn = parseOk(R"(
    def fig6() -> (t2:i8) {
      t0:i8 = const[5];
      t1:i8 = sll[1](t0);
      t2:i8 = add(t0, t1) @??;
    }
  )");
  EXPECT_GE(constantFold(Fn), 2u);
  deadCodeElim(Fn);
  ASSERT_EQ(Fn.body().size(), 1u);
  EXPECT_EQ(Fn.body()[0].wireOp(), ir::WireOp::Const);
  EXPECT_EQ(Fn.body()[0].attrs()[0], 15);
}

TEST(ConstFold, AppliesIdentities) {
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8) -> (y:i8, z:i8, w:i8) {
      zero:i8 = const[0];
      one:i8 = const[1];
      t:bool = const[1];
      y:i8 = add(a, zero) @??;
      z:i8 = mul(b, one) @??;
      w:i8 = mux(t, a, b) @??;
    }
  )");
  EXPECT_GE(constantFold(Fn), 3u);
  for (const ir::Instr &I : Fn.body())
    EXPECT_FALSE(I.isComp()) << I.str();
  // Semantics preserved.
  Trace Before = runRandom(parseOk(R"(
    def f(a:i8, b:i8) -> (y:i8, z:i8, w:i8) {
      zero:i8 = const[0];
      one:i8 = const[1];
      t:bool = const[1];
      y:i8 = add(a, zero) @??;
      z:i8 = mul(b, one) @??;
      w:i8 = mux(t, a, b) @??;
    }
  )"), 11);
  Trace After = runRandom(Fn, 11);
  EXPECT_EQ(Before, After);
}

TEST(ConstFold, MulByZeroBecomesConstant) {
  Function Fn = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      zero:i8 = const[0];
      y:i8 = mul(a, zero) @??;
    }
  )");
  EXPECT_GE(constantFold(Fn), 1u);
  EXPECT_TRUE(Fn.findDef("y")->isWire());
}

TEST(Vectorize, CombinesFourIndependentAdds) {
  Function Fn = parseOk(R"(
    def f(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, a3:i8, b3:i8)
        -> (y0:i8, y1:i8, y2:i8, y3:i8) {
      y0:i8 = add(a0, b0) @??;
      y1:i8 = add(a1, b1) @??;
      y2:i8 = add(a2, b2) @??;
      y3:i8 = add(a3, b3) @??;
    }
  )");
  Trace Before = runRandom(Fn, 5);
  EXPECT_EQ(vectorize(Fn), 1u);
  Status S = ir::verify(Fn);
  ASSERT_TRUE(S.ok()) << S.error() << "\n" << Fn.str();
  // One vector add remains; everything else is wiring.
  unsigned CompCount = 0;
  for (const ir::Instr &I : Fn.body())
    if (I.isComp()) {
      ++CompCount;
      EXPECT_EQ(I.type(), Type::makeInt(8, 4));
    }
  EXPECT_EQ(CompCount, 1u);
  EXPECT_EQ(runRandom(Fn, 5), Before);
}

TEST(Vectorize, RespectsDependences) {
  // y1 depends on y0: they cannot share a vector instruction.
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8) -> (y1:i8) {
      y0:i8 = add(a, b) @??;
      y1:i8 = add(y0, b) @??;
    }
  )");
  EXPECT_EQ(vectorize(Fn, 2), 0u);
}

TEST(Vectorize, GroupsRegistersWithSharedEnable) {
  Function Fn = parseOk(R"(
    def f(a0:i8, a1:i8, a2:i8, a3:i8, en:bool, other:bool)
        -> (y0:i8, y1:i8, y2:i8, y3:i8, z:i8) {
      y0:i8 = reg[0](a0, en) @??;
      y1:i8 = reg[0](a1, en) @??;
      y2:i8 = reg[0](a2, en) @??;
      y3:i8 = reg[0](a3, en) @??;
      z:i8 = reg[0](a0, other) @??;
    }
  )");
  Trace Before = runRandom(Fn, 6);
  EXPECT_EQ(vectorize(Fn), 1u);
  ASSERT_TRUE(ir::verify(Fn).ok()) << Fn.str();
  EXPECT_EQ(runRandom(Fn, 6), Before);
  // The differently-enabled register stays scalar.
  const ir::Instr *Z = Fn.findDef("z");
  ASSERT_NE(Z, nullptr);
  EXPECT_TRUE(Z->isReg());
  // The grouped registers are now slices of one vector register.
  const ir::Instr *Y0 = Fn.findDef("y0");
  ASSERT_NE(Y0, nullptr);
  EXPECT_TRUE(Y0->isWire());
  EXPECT_EQ(Y0->wireOp(), ir::WireOp::Slice);
}

TEST(Vectorize, MixedOpsDoNotMerge) {
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8) -> (y0:i8, y1:i8) {
      y0:i8 = add(a, b) @??;
      y1:i8 = sub(a, b) @??;
    }
  )");
  EXPECT_EQ(vectorize(Fn, 2), 0u);
}

TEST(Vectorize, EnablesDspSimdSelection) {
  // Scalar adds select LUTs; after vectorization the group lands on one
  // SIMD DSP (the Figure 16 story).
  const char *Source = R"(
    def f(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, a3:i8, b3:i8)
        -> (y0:i8, y1:i8, y2:i8, y3:i8) {
      y0:i8 = add(a0, b0) @??;
      y1:i8 = add(a1, b1) @??;
      y2:i8 = add(a2, b2) @??;
      y3:i8 = add(a3, b3) @??;
    }
  )";
  core::CompileOptions Options;
  Options.Dev = device::Device::small();

  Function Scalar = parseOk(Source);
  Result<core::CompileResult> A = core::compile(Scalar, Options);
  ASSERT_TRUE(A.ok()) << A.error();
  EXPECT_EQ(A.value().Util.Dsps, 0u);
  EXPECT_EQ(A.value().Util.Luts, 32u);

  Function Vector = parseOk(Source);
  vectorize(Vector);
  Result<core::CompileResult> B = core::compile(Vector, Options);
  ASSERT_TRUE(B.ok()) << B.error();
  EXPECT_EQ(B.value().Util.Dsps, 1u);
  EXPECT_EQ(B.value().Util.Luts, 0u);
}

class VectorizeRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(VectorizeRandom, PreservesSemantics) {
  // Random flat programs of independent scalar ops; vectorization must
  // never change the observed trace.
  std::mt19937 Rng(GetParam());
  Function Fn("vr");
  Type I8 = Type::makeInt(8);
  Fn.addInput("en", Type::makeBool());
  std::uniform_int_distribution<int> OpDist(0, 2);
  unsigned N = 4 + GetParam() % 9;
  for (unsigned I = 0; I < N; ++I) {
    std::string A = "a" + std::to_string(I), B = "b" + std::to_string(I);
    Fn.addInput(A, I8);
    Fn.addInput(B, I8);
    std::string Dst = "y" + std::to_string(I);
    ir::CompOp Op = OpDist(Rng) == 0
                        ? ir::CompOp::Add
                        : (OpDist(Rng) == 1 ? ir::CompOp::Sub
                                            : ir::CompOp::Xor);
    Fn.addInstr(ir::Instr::makeComp(Dst, I8, Op, {A, B}));
    Fn.addOutput(Dst, I8);
  }
  ASSERT_TRUE(ir::verify(Fn).ok());
  Trace Before = runRandom(Fn, GetParam() + 100);
  vectorize(Fn);
  ASSERT_TRUE(ir::verify(Fn).ok()) << Fn.str();
  EXPECT_EQ(runRandom(Fn, GetParam() + 100), Before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizeRandom, ::testing::Range(0u, 15u));
