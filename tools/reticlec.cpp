//===- tools/reticlec.cpp - The Reticle compiler driver -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Command-line front end for the compilation pipeline of Figure 7:
/// reads an intermediate-language program and emits assembly, placed
/// assembly, or structural Verilog with layout annotations. Also exposes
/// the behavioral-Verilog translation backend used to build the paper's
/// baselines, the built-in target description, and the front-end
/// optimization passes of Section 8.2.
///
/// Usage:
///   reticlec [options] <input.ret>
///     --emit=asm|placed|verilog|behavioral   artifact to print (verilog)
///     --device=xczu3eg|small|tiny            placement target (xczu3eg)
///     -O                                     run dce/fold/vectorize first
///     --no-cascade                           skip the cascade rewrite
///     --no-shrink                            skip placement shrinking
///     --stats                                per-stage report on stderr
///     --dump-target                          print the UltraScale TDL
///     -o <file>                              write output to a file
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "ir/Parser.h"
#include "opt/Transforms.h"
#include "synth/Synth.h"
#include "tdl/Ultrascale.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace reticle;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--emit=asm|placed|verilog|behavioral] "
               "[--device=xczu3eg|small|tiny] [-O] [--no-cascade] "
               "[--no-shrink] [--stats] [-o <file>] <input.ret>\n"
               "       %s --dump-target\n",
               Argv0, Argv0);
  return 2;
}

int fatal(const std::string &Message) {
  std::fprintf(stderr, "reticlec: error: %s\n", Message.c_str());
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Emit = "verilog";
  std::string DeviceName = "xczu3eg";
  std::string InputPath;
  std::string OutputPath;
  bool Optimize = false;
  bool Stats = false;
  core::CompileOptions Options;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--dump-target") {
      std::fputs(tdl::ultrascaleText().c_str(), stdout);
      return 0;
    }
    if (Arg.rfind("--emit=", 0) == 0) {
      Emit = Arg.substr(7);
    } else if (Arg.rfind("--device=", 0) == 0) {
      DeviceName = Arg.substr(9);
    } else if (Arg == "-O") {
      Optimize = true;
    } else if (Arg == "--no-cascade") {
      Options.Cascade = false;
    } else if (Arg == "--no-shrink") {
      Options.Shrink = false;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "-o") {
      if (++I >= Argc)
        return usage(Argv[0]);
      OutputPath = Argv[I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "reticlec: unknown option '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else if (InputPath.empty()) {
      InputPath = Arg;
    } else {
      return usage(Argv[0]);
    }
  }
  if (InputPath.empty())
    return usage(Argv[0]);

  if (DeviceName == "xczu3eg")
    Options.Dev = device::Device::xczu3eg();
  else if (DeviceName == "small")
    Options.Dev = device::Device::small();
  else if (DeviceName == "tiny")
    Options.Dev = device::Device::tiny();
  else
    return fatal("unknown device '" + DeviceName + "'");

  std::ifstream In(InputPath);
  if (!In)
    return fatal("cannot open '" + InputPath + "'");
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Result<ir::Function> Fn = ir::parseFunction(Buffer.str());
  if (!Fn)
    return fatal(InputPath + ": " + Fn.error());

  if (Optimize) {
    unsigned Folded = opt::constantFold(Fn.value());
    unsigned Dead = opt::deadCodeElim(Fn.value());
    unsigned Vectors = opt::vectorize(Fn.value());
    if (Stats)
      std::fprintf(stderr,
                   "opt: folded %u, removed %u dead, formed %u vector "
                   "op(s)\n",
                   Folded, Dead, Vectors);
  }

  std::string Output;
  if (Emit == "behavioral") {
    Output = synth::emitBehavioral(Fn.value(), synth::Mode::Hint).str();
  } else {
    Result<core::CompileResult> R = core::compile(Fn.value(), Options);
    if (!R)
      return fatal(R.error());
    if (Emit == "asm")
      Output = R.value().Asm.str();
    else if (Emit == "placed")
      Output = R.value().Placed.str();
    else if (Emit == "verilog")
      Output = R.value().Verilog.str();
    else
      return fatal("unknown --emit kind '" + Emit + "'");
    if (Stats) {
      const core::CompileResult &C = R.value();
      std::fprintf(stderr,
                   "select: %u tree(s) -> %u op(s) + %u wire(s), area %lld "
                   "(%.2f ms)\n",
                   C.SelectStats.NumTrees, C.SelectStats.NumAsmOps,
                   C.SelectStats.NumWire,
                   static_cast<long long>(C.SelectStats.TotalArea),
                   C.SelectMs);
      std::fprintf(stderr, "cascade: %u chain(s), %u rewritten\n",
                   C.CascadeStats.Chains, C.CascadeStats.Rewritten);
      std::fprintf(stderr,
                   "place: %u solve(s), %u var(s), %llu conflict(s) "
                   "(%.2f ms)\n",
                   C.PlaceStats.Solves, C.PlaceStats.Vars,
                   static_cast<unsigned long long>(C.PlaceStats.Conflicts),
                   C.PlaceMs);
      std::fprintf(stderr, "util: %u DSP(s), %u LUT(s), %u FF(s)\n",
                   C.Util.Dsps, C.Util.Luts, C.Util.Ffs);
      std::fprintf(stderr, "timing: %.2f ns critical path (%.1f MHz)\n",
                   C.Timing.CriticalPathNs, C.Timing.FmaxMhz);
    }
  }

  if (OutputPath.empty()) {
    std::fputs(Output.c_str(), stdout);
    return 0;
  }
  std::ofstream Out(OutputPath);
  if (!Out)
    return fatal("cannot write '" + OutputPath + "'");
  Out << Output;
  return 0;
}
