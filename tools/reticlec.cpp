//===- tools/reticlec.cpp - The Reticle compiler driver -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Command-line front end for the compilation pipeline of Figure 7:
/// reads an intermediate-language program and emits assembly, placed
/// assembly, or structural Verilog with layout annotations. Also exposes
/// the behavioral-Verilog translation backend used to build the paper's
/// baselines, the built-in target description, and the front-end
/// optimization passes of Section 8.2.
///
/// Usage:
///   reticlec [options] <input.ret>
///     --emit=asm|placed|verilog|behavioral   artifact to print (verilog)
///     --device=xczu3eg|small|tiny            placement target (xczu3eg)
///     -O                                     run dce/fold/vectorize first
///     --no-cascade                           skip the cascade rewrite
///     --no-shrink                            skip placement shrinking
///     --stats                                per-stage report on stderr
///     --stats-json=<file>                    unified stats document
///     --trace=<file>                         Chrome/Perfetto trace of the run
///     --dump-target                          print the UltraScale TDL
///     --version                              print the version and exit
///     -o <file>                              write output to a file
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "core/Stats.h"
#include "ir/Parser.h"
#include "obs/Report.h"
#include "obs/Telemetry.h"
#include "opt/Transforms.h"
#include "synth/Synth.h"
#include "tdl/Ultrascale.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#ifndef RETICLE_VERSION
#define RETICLE_VERSION "0.0.0-dev"
#endif

using namespace reticle;

namespace {

constexpr const char *EmitChoices = "asm, placed, verilog, behavioral";
constexpr const char *DeviceChoices = "xczu3eg, small, tiny";

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--emit=asm|placed|verilog|behavioral] "
               "[--device=xczu3eg|small|tiny] [-O] [--no-cascade] "
               "[--no-shrink] [--stats] [--stats-json=<file>] "
               "[--trace=<file>] [-o <file>] <input.ret>\n"
               "       %s --dump-target\n"
               "       %s --version\n",
               Argv0, Argv0, Argv0);
  return 2;
}

int fatal(const std::string &Message) {
  std::fprintf(stderr, "reticlec: error: %s\n", Message.c_str());
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Emit = "verilog";
  std::string DeviceName = "xczu3eg";
  std::string InputPath;
  std::string OutputPath;
  std::string StatsJsonPath;
  std::string TracePath;
  bool Optimize = false;
  bool Stats = false;
  core::CompileOptions Options;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--dump-target") {
      std::fputs(tdl::ultrascaleText().c_str(), stdout);
      return 0;
    }
    if (Arg == "--version") {
      std::printf("reticlec %s\n", RETICLE_VERSION);
      return 0;
    }
    if (Arg.rfind("--emit=", 0) == 0) {
      Emit = Arg.substr(7);
    } else if (Arg.rfind("--device=", 0) == 0) {
      DeviceName = Arg.substr(9);
    } else if (Arg.rfind("--stats-json=", 0) == 0) {
      StatsJsonPath = Arg.substr(13);
      if (StatsJsonPath.empty())
        return fatal("--stats-json= requires a file path");
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TracePath = Arg.substr(8);
      if (TracePath.empty())
        return fatal("--trace= requires a file path");
    } else if (Arg == "-O") {
      Optimize = true;
    } else if (Arg == "--no-cascade") {
      Options.Cascade = false;
    } else if (Arg == "--no-shrink") {
      Options.Shrink = false;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "-o") {
      if (++I >= Argc)
        return usage(Argv[0]);
      OutputPath = Argv[I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "reticlec: unknown option '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else if (InputPath.empty()) {
      InputPath = Arg;
    } else {
      return usage(Argv[0]);
    }
  }
  if (InputPath.empty())
    return usage(Argv[0]);

  if (Emit != "asm" && Emit != "placed" && Emit != "verilog" &&
      Emit != "behavioral")
    return fatal("unknown --emit kind '" + Emit +
                 "' (valid: " + EmitChoices + ")");

  if (DeviceName == "xczu3eg")
    Options.Dev = device::Device::xczu3eg();
  else if (DeviceName == "small")
    Options.Dev = device::Device::small();
  else if (DeviceName == "tiny")
    Options.Dev = device::Device::tiny();
  else
    return fatal("unknown --device '" + DeviceName +
                 "' (valid: " + DeviceChoices + ")");

  if (!TracePath.empty())
    obs::enableTracing();

  std::ifstream In(InputPath);
  if (!In)
    return fatal("cannot open '" + InputPath + "'");
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Result<ir::Function> Fn = ir::parseFunction(Buffer.str());
  if (!Fn)
    return fatal(InputPath + ": " + Fn.error());

  if (Optimize) {
    unsigned Folded = opt::constantFold(Fn.value());
    unsigned Dead = opt::deadCodeElim(Fn.value());
    unsigned Vectors = opt::vectorize(Fn.value());
    if (Stats)
      std::fprintf(stderr,
                   "opt: folded %u, removed %u dead, formed %u vector "
                   "op(s)\n",
                   Folded, Dead, Vectors);
  }

  std::string Output;
  if (Emit == "behavioral") {
    if (!StatsJsonPath.empty())
      return fatal("--stats-json requires a pipeline emit kind "
                   "(asm, placed, verilog)");
    Output = synth::emitBehavioral(Fn.value(), synth::Mode::Hint).str();
  } else {
    Result<core::CompileResult> R = core::compile(Fn.value(), Options);
    if (!R)
      return fatal(R.error());
    if (Emit == "asm")
      Output = R.value().Asm.str();
    else if (Emit == "placed")
      Output = R.value().Placed.str();
    else
      Output = R.value().Verilog.str();

    obs::Json Doc = core::statsJson(R.value(), InputPath);
    if (Stats)
      obs::printTable(Doc, stderr);
    if (!StatsJsonPath.empty())
      if (Status S = obs::writeJsonFile(Doc, StatsJsonPath); !S)
        return fatal(S.error());
  }

  if (!TracePath.empty())
    if (Status S = obs::writeTrace(TracePath); !S)
      return fatal(S.error());

  if (OutputPath.empty()) {
    std::fputs(Output.c_str(), stdout);
    return 0;
  }
  std::ofstream Out(OutputPath);
  if (!Out)
    return fatal("cannot write '" + OutputPath + "'");
  Out << Output;
  return 0;
}
