//===- tools/reticlec.cpp - The Reticle compiler driver -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Command-line front end for the compilation pipeline of Figure 7:
/// reads an intermediate-language program and emits assembly, placed
/// assembly, or structural Verilog with layout annotations. Also exposes
/// the behavioral-Verilog translation backend used to build the paper's
/// baselines, the built-in target description, the front-end optimization
/// passes of Section 8.2, and the introspection surface: per-stage
/// program snapshots, optimization remarks, and a placement floorplan.
///
/// Usage:
///   reticlec [options] <input.ret>
///     --emit=asm|placed|verilog|behavioral   artifact to print (verilog)
///     --device=xczu3eg|small|tiny            placement target (xczu3eg)
///     -O                                     run dce/fold/vectorize first
///     --no-cascade                           skip the cascade rewrite
///     --no-shrink                            skip placement shrinking
///     --stats                                per-stage report on stderr
///     --stats-json=<file|->                  unified stats document
///     --trace=<file|->                       Chrome/Perfetto trace of the run
///     --dump-after-all=<dir>                 write every stage snapshot + manifest
///     --dump-after=<stage>                   print one stage's program to stderr
///                                            (parse, isel, cascade, place, codegen)
///     --remarks=<file|->                     human-readable optimization remarks
///     --remarks-json=<file|->                remarks as JSONL (reticle-remarks-v1)
///     --floorplan=<file|->                   placement floorplan; SVG by default,
///                                            ASCII for "-" or a .txt path
///     --dump-target                          print the UltraScale TDL
///     --version                              print the version and exit
///     -o <file>                              write output to a file
///
/// Exit codes: 0 success, 1 the input failed to parse or compile, 2 the
/// invocation itself was wrong (unknown flag or value, missing input,
/// unreadable input file, unwritable output file).
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "core/Stats.h"
#include "ir/Parser.h"
#include "obs/Remarks.h"
#include "obs/Report.h"
#include "obs/Snapshots.h"
#include "obs/Telemetry.h"
#include "opt/Transforms.h"
#include "place/Floorplan.h"
#include "synth/Synth.h"
#include "tdl/Ultrascale.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#ifndef RETICLE_VERSION
#define RETICLE_VERSION "0.0.0-dev"
#endif

using namespace reticle;

namespace {

constexpr const char *EmitChoices = "asm, placed, verilog, behavioral";
constexpr const char *DeviceChoices = "xczu3eg, small, tiny";
constexpr const char *StageChoices = "parse, isel, cascade, place, codegen";

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--emit=asm|placed|verilog|behavioral] "
               "[--device=xczu3eg|small|tiny] [-O] [--no-cascade] "
               "[--no-shrink] [--stats] [--stats-json=<file|->] "
               "[--trace=<file|->] [--dump-after-all=<dir>] "
               "[--dump-after=<stage>] [--remarks=<file|->] "
               "[--remarks-json=<file|->] [--floorplan=<file|->] "
               "[-o <file>] <input.ret>\n"
               "       %s --dump-target\n"
               "       %s --version\n",
               Argv0, Argv0, Argv0);
  return 2;
}

/// The invocation itself was wrong: bad flag value, unreadable input,
/// unwritable output. Distinct from a program that fails to compile.
int usageError(const std::string &Message) {
  std::fprintf(stderr, "reticlec: error: %s\n", Message.c_str());
  return 2;
}

/// The input program failed to parse or compile.
int compileError(const std::string &Message) {
  std::fprintf(stderr, "reticlec: error: %s\n", Message.c_str());
  return 1;
}

bool isKnownStage(const std::string &Stage) {
  return Stage == "parse" || Stage == "isel" || Stage == "cascade" ||
         Stage == "place" || Stage == "codegen";
}

bool endsWith(const std::string &Text, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return Text.size() >= N &&
         Text.compare(Text.size() - N, N, Suffix) == 0;
}

/// Writes \p Text to \p Path, or to stdout when \p Path is "-".
Status writeTextOutput(const std::string &Path, const std::string &Text) {
  if (Path == "-") {
    std::fputs(Text.c_str(), stdout);
    return Status::success();
  }
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write '" + Path + "'");
  Out << Text;
  return Status::success();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Emit = "verilog";
  std::string DeviceName = "xczu3eg";
  std::string InputPath;
  std::string OutputPath;
  std::string StatsJsonPath;
  std::string TracePath;
  std::string DumpDir;
  std::string DumpStage;
  std::string RemarksPath;
  std::string RemarksJsonPath;
  std::string FloorplanPath;
  bool Optimize = false;
  bool Stats = false;
  core::CompileOptions Options;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--dump-target") {
      std::fputs(tdl::ultrascaleText().c_str(), stdout);
      return 0;
    }
    if (Arg == "--version") {
      std::printf("reticlec %s\n", RETICLE_VERSION);
      return 0;
    }
    if (Arg.rfind("--emit=", 0) == 0) {
      Emit = Arg.substr(7);
    } else if (Arg.rfind("--device=", 0) == 0) {
      DeviceName = Arg.substr(9);
    } else if (Arg.rfind("--stats-json=", 0) == 0) {
      StatsJsonPath = Arg.substr(13);
      if (StatsJsonPath.empty())
        return usageError("--stats-json= requires a file path or '-'");
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TracePath = Arg.substr(8);
      if (TracePath.empty())
        return usageError("--trace= requires a file path or '-'");
    } else if (Arg.rfind("--dump-after-all=", 0) == 0) {
      DumpDir = Arg.substr(17);
      if (DumpDir.empty())
        return usageError("--dump-after-all= requires a directory");
    } else if (Arg.rfind("--dump-after=", 0) == 0) {
      DumpStage = Arg.substr(13);
      if (!isKnownStage(DumpStage))
        return usageError("unknown stage '" + DumpStage +
                          "' (valid: " + std::string(StageChoices) + ")");
    } else if (Arg.rfind("--remarks=", 0) == 0) {
      RemarksPath = Arg.substr(10);
      if (RemarksPath.empty())
        return usageError("--remarks= requires a file path or '-'");
    } else if (Arg.rfind("--remarks-json=", 0) == 0) {
      RemarksJsonPath = Arg.substr(15);
      if (RemarksJsonPath.empty())
        return usageError("--remarks-json= requires a file path or '-'");
    } else if (Arg.rfind("--floorplan=", 0) == 0) {
      FloorplanPath = Arg.substr(12);
      if (FloorplanPath.empty())
        return usageError("--floorplan= requires a file path or '-'");
    } else if (Arg == "-O") {
      Optimize = true;
    } else if (Arg == "--no-cascade") {
      Options.Cascade = false;
    } else if (Arg == "--no-shrink") {
      Options.Shrink = false;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "-o") {
      if (++I >= Argc)
        return usage(Argv[0]);
      OutputPath = Argv[I];
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "reticlec: unknown option '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else if (InputPath.empty()) {
      InputPath = Arg;
    } else {
      return usage(Argv[0]);
    }
  }
  if (InputPath.empty())
    return usage(Argv[0]);

  if (Emit != "asm" && Emit != "placed" && Emit != "verilog" &&
      Emit != "behavioral")
    return usageError("unknown --emit kind '" + Emit +
                      "' (valid: " + EmitChoices + ")");

  if (DeviceName == "xczu3eg")
    Options.Dev = device::Device::xczu3eg();
  else if (DeviceName == "small")
    Options.Dev = device::Device::small();
  else if (DeviceName == "tiny")
    Options.Dev = device::Device::tiny();
  else
    return usageError("unknown --device '" + DeviceName +
                      "' (valid: " + DeviceChoices + ")");

  if (Emit == "behavioral") {
    // Everything below observes the Figure-7 pipeline, which the
    // behavioral translation bypasses entirely.
    const std::pair<const char *, const std::string *> PipelineOnly[] = {
        {"--stats-json", &StatsJsonPath},   {"--dump-after-all", &DumpDir},
        {"--dump-after", &DumpStage},       {"--remarks", &RemarksPath},
        {"--remarks-json", &RemarksJsonPath},
        {"--floorplan", &FloorplanPath},
    };
    for (const auto &[Flag, Value] : PipelineOnly)
      if (!Value->empty())
        return usageError(std::string(Flag) +
                          " requires a pipeline emit kind "
                          "(asm, placed, verilog)");
  }

  if (!TracePath.empty())
    obs::enableTracing();
  if (!RemarksPath.empty() || !RemarksJsonPath.empty())
    obs::enableRemarks();

  std::ifstream In(InputPath);
  if (!In)
    return usageError("cannot open '" + InputPath + "'");
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Result<ir::Function> Fn = ir::parseFunction(Buffer.str());
  if (!Fn)
    return compileError(InputPath + ": " + Fn.error());

  if (Optimize) {
    unsigned Folded = opt::constantFold(Fn.value());
    unsigned Dead = opt::deadCodeElim(Fn.value());
    unsigned Vectors = opt::vectorize(Fn.value());
    if (Stats)
      std::fprintf(stderr,
                   "opt: folded %u, removed %u dead, formed %u vector "
                   "op(s)\n",
                   Folded, Dead, Vectors);
  }

  obs::SnapshotSink Snapshots;
  bool WantSnapshots = !DumpDir.empty() || !DumpStage.empty();
  if (WantSnapshots) {
    // The "parse" snapshot reflects the program the pipeline actually
    // consumes, i.e. after any -O front-end passes.
    Snapshots.add("parse", "ir", Fn.value().str());
    Options.Snapshots = &Snapshots;
  }

  std::string Output;
  if (Emit == "behavioral") {
    Output = synth::emitBehavioral(Fn.value(), synth::Mode::Hint).str();
  } else {
    Result<core::CompileResult> R = core::compile(Fn.value(), Options);
    if (!R)
      return compileError(R.error());
    if (Emit == "asm")
      Output = R.value().Asm.str();
    else if (Emit == "placed")
      Output = R.value().Placed.str();
    else
      Output = R.value().Verilog.str();

    obs::Json Doc = core::statsJson(R.value(), InputPath);
    if (Stats)
      obs::printTable(Doc, stderr);
    if (!StatsJsonPath.empty()) {
      if (StatsJsonPath == "-") {
        std::fputs((Doc.str(2) + "\n").c_str(), stdout);
      } else if (Status S = obs::writeJsonFile(Doc, StatsJsonPath); !S) {
        return usageError(S.error());
      }
    }

    if (!DumpDir.empty())
      if (Status S = obs::writeSnapshots(Snapshots, DumpDir, InputPath); !S)
        return usageError(S.error());
    if (!DumpStage.empty()) {
      const obs::StageSnapshot *Snap = Snapshots.find(DumpStage);
      if (!Snap)
        return compileError("no snapshot recorded for stage '" + DumpStage +
                            "'");
      std::fprintf(stderr, "; after %s\n", Snap->Stage.c_str());
      std::fputs(Snap->Text.c_str(), stderr);
    }

    if (!FloorplanPath.empty()) {
      bool Ascii = FloorplanPath == "-" || endsWith(FloorplanPath, ".txt");
      std::string Plan =
          Ascii ? place::floorplanAscii(R.value().Placed, Options.Dev)
                : place::floorplanSvg(R.value().Placed, Options.Dev);
      if (Status S = writeTextOutput(FloorplanPath, Plan); !S)
        return usageError(S.error());
    }
  }

  if (!RemarksPath.empty()) {
    if (RemarksPath == "-") {
      std::fputs(obs::remarksText().c_str(), stdout);
    } else if (Status S = obs::writeRemarksText(RemarksPath); !S) {
      return usageError(S.error());
    }
  }
  if (!RemarksJsonPath.empty()) {
    if (RemarksJsonPath == "-") {
      std::fputs(obs::remarksJsonl(InputPath).c_str(), stdout);
    } else if (Status S = obs::writeRemarksJsonl(RemarksJsonPath, InputPath);
               !S) {
      return usageError(S.error());
    }
  }

  if (!TracePath.empty()) {
    if (TracePath == "-") {
      std::fputs((obs::traceJson() + "\n").c_str(), stdout);
    } else if (Status S = obs::writeTrace(TracePath); !S) {
      return usageError(S.error());
    }
  }

  if (OutputPath.empty()) {
    std::fputs(Output.c_str(), stdout);
    return 0;
  }
  std::ofstream Out(OutputPath);
  if (!Out)
    return usageError("cannot write '" + OutputPath + "'");
  Out << Output;
  return 0;
}
