//===- tools/reticlec.cpp - The Reticle compiler driver -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Command-line front end for the compilation pipeline of Figure 7:
/// reads an intermediate-language program and emits assembly, placed
/// assembly, or structural Verilog with layout annotations. Also exposes
/// the behavioral-Verilog translation backend used to build the paper's
/// baselines, the built-in target description, the front-end optimization
/// passes of Section 8.2, and the introspection surface: per-stage
/// program snapshots, optimization remarks, and a placement floorplan.
///
/// Usage:
///   reticlec [options] <input.ret> [<input2.ret> ...]
///     --emit=asm|placed|verilog|behavioral   artifact to print (verilog)
///     --device=xczu3eg|small|tiny            placement target (xczu3eg)
///     -O                                     run dce/fold/vectorize first
///     --no-cascade                           skip the cascade rewrite
///     --no-shrink                            skip placement shrinking
///     --sat-solver=scratch|incremental|portfolio
///                                            shrink-search solver strategy
///                                            (incremental)
///     --sat-threads=N                        racing lanes in portfolio
///                                            mode (4)
///     --sat-proof=<file|->                   DRAT-style proof log of the
///                                            placement SAT searches
///     --stats                                per-stage report on stderr
///     --stats-json=<file|->                  unified stats document
///     --trace=<file|->                       Chrome/Perfetto trace of the run
///     --dump-after-all=<dir>                 write every stage snapshot + manifest
///     --dump-after=<stage>                   print one stage's program to stderr
///                                            (parse, opt, isel, cascade, place,
///                                            codegen)
///     --remarks=<file|->                     human-readable optimization remarks
///     --remarks-json=<file|->                remarks as JSONL (reticle-remarks-v1)
///     --floorplan=<file|->                   placement floorplan; SVG by default,
///                                            ASCII for "-" or a .txt path
///     --floorplan-timeline=<file|->          shrink-probe timeline as SVG
///                                            small multiples
///     --coverage=<file|->                    coverage bins as a
///                                            reticle-coverage-v1 doc
///     --profile-folded=<file|->              collapsed-stack flamegraph fold
///                                            of the recorded tracing spans
///     --disable-pass=<name>                  skip an optional pass (opt,
///                                            cascade, timing); repeatable
///     --print-before=<name>                  print the program to stderr just
///                                            before the named pass runs
///     --dump-target                          print the UltraScale TDL
///     --version                              print the version and exit
///     -o <file>                              write output to a file
///
/// Run mode executes the compiled program instead of printing an
/// artifact: the input trace (reticle-input-trace-v1 JSON) drives the
/// reference interpreter, the gate-level netlist simulator, the bytecode
/// VM (compiled from either source), or all of them:
///     --run=<trace.json>                     execute over this input trace
///     --cycles=N                             simulate only the first N cycles
///     --sim=interp|netlist|vm-ir|vm-netlist|both
///                                            engine selection (both)
///     --vcd=<file|->                         waveform as standard VCD
///     --wave-json=<file|->                   waveform as reticle-wave-v1 JSONL
///     --dump-sim-program=<file|->            compiled sim bytecode, as
///                                            reticle-sim-program-v1 text
///     --profile-sim=<file|->                 per-op VM execution profile as
///                                            a reticle-profile-v1 doc
///                                            (requires a VM engine; in
///                                            --sim=both mode profiles vm-ir)
/// Waveforms and sim profiles flush even when a run aborts
/// mid-simulation; in a RETICLE_NO_TELEMETRY build --run works but the
/// waveform, coverage, and profile flags are rejected. --sim=both runs all four engines and exits 1 on
/// the first divergence (interp vs netlist, vm-ir vs interp, vm-netlist
/// vs netlist). With --run, --coverage additionally carries sim.toggle
/// bins: per-signal-bit 0->1/1->0 transitions replayed from the captured
/// waveforms of every engine that ran.
///
/// With more than one input the driver switches to batch mode and
/// compiles every program concurrently, one CompileSession per input:
///     --jobs=N                               worker threads (default: cores)
///     --out-dir=<dir>                        per-input artifacts land here (.)
///     --schedule-from=<summary.json>         schedule by measured timings
///                                            from a prior run's batch summary
/// Each input <stem>.ret produces <out-dir>/<stem>.v (or .rasm), plus —
/// when the corresponding flag is given — <stem>.stats.json,
/// <stem>.remarks.txt, <stem>.remarks.jsonl, <stem>.trace.json,
/// <stem>.coverage.json, and a <stem>/ snapshot directory under the
/// --dump-after-all directory. The --coverage path receives the batch
/// coverage union (also embedded in the summary's "coverage" key). The
/// --stats-json path then receives the merged "reticle-batch-v1" summary
/// (the per-input file paths of --remarks/--remarks-json/--trace are
/// ignored; presence of the flag enables the per-input artifact).
/// Single-input flags (-o, --dump-after, --floorplan,
/// --floorplan-timeline, --print-before, --emit=behavioral) are rejected
/// in batch mode.
///
/// Remarks and traces are flushed even when a compile fails: a failed
/// placement's `sat:core` remarks are precisely the output that explains
/// the failure.
///
/// Exit codes: 0 success, 1 an input failed to parse or compile, 2 the
/// invocation itself was wrong (unknown flag or value, missing input,
/// unreadable input file, unwritable output file).
///
//===----------------------------------------------------------------------===//

#include "core/Batch.h"
#include "core/Compiler.h"
#include "core/Pipeline.h"
#include "core/Session.h"
#include "core/Stats.h"
#include "codegen/NetlistSim.h"
#include "interp/Interp.h"
#include "interp/TraceIo.h"
#include "interp/Wave.h"
#include "ir/Parser.h"
#include "obs/Coverage.h"
#include "obs/Remarks.h"
#include "obs/Report.h"
#include "obs/Snapshots.h"
#include "obs/Telemetry.h"
#include "opt/Transforms.h"
#include "place/Floorplan.h"
#include "sim/Compile.h"
#include "sim/Vm.h"
#include "synth/Synth.h"
#include "tdl/Ultrascale.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#ifndef RETICLE_VERSION
#define RETICLE_VERSION "0.0.0-dev"
#endif

using namespace reticle;

namespace {

constexpr const char *EmitChoices = "asm, placed, verilog, behavioral";
constexpr const char *DeviceChoices = "xczu3eg, small, tiny";
constexpr const char *StageChoices =
    "parse, opt, isel, cascade, place, codegen";
constexpr const char *PassChoices =
    "parse, opt, isel, cascade, place, codegen, timing";
constexpr const char *DisableablePasses = "opt, cascade, timing";

/// The complete flag inventory, one entry per flag the argument parser
/// accepts. usage() renders it (and the --help e2e test asserts every
/// accepted flag appears), so a flag added to main() without a row here
/// is a test failure, not silent doc rot.
void printUsage(std::FILE *Out, const char *Argv0) {
  std::fprintf(
      Out,
      "usage: %s [options] <input.ret> [<input2.ret> ...]\n"
      "\n"
      "compile options:\n"
      "  --emit=asm|placed|verilog|behavioral   artifact to print (verilog)\n"
      "  --device=xczu3eg|small|tiny            placement target (xczu3eg)\n"
      "  -O                                     run dce/fold/vectorize first\n"
      "  --no-cascade                           skip the cascade rewrite\n"
      "  --no-shrink                            skip placement shrinking\n"
      "  --sat-solver=scratch|incremental|portfolio\n"
      "                                         shrink-search solver strategy "
      "(incremental)\n"
      "  --sat-threads=N                        racing lanes in portfolio "
      "mode (4)\n"
      "  --sat-proof=<file|->                   DRAT-style proof log of the "
      "placement\n"
      "                                         SAT searches\n"
      "  --disable-pass=<name>                  skip an optional pass "
      "(repeatable)\n"
      "  --print-before=<name>                  print the program before a "
      "pass\n"
      "  -o <file>                              write output to a file\n"
      "\n"
      "observability:\n"
      "  --stats                                per-stage report on stderr\n"
      "  --stats-json=<file|->                  unified stats document\n"
      "  --trace=<file|->                       Chrome/Perfetto trace\n"
      "  --dump-after-all=<dir>                 every stage snapshot + "
      "manifest\n"
      "  --dump-after=<stage>                   one stage's program to "
      "stderr\n"
      "  --remarks=<file|->                     optimization remarks (text)\n"
      "  --remarks-json=<file|->                remarks as JSONL\n"
      "  --floorplan=<file|->                   placement floorplan "
      "(SVG/ASCII)\n"
      "  --floorplan-timeline=<file|->          shrink-probe timeline SVG\n"
      "  --coverage=<file|->                    coverage bins as "
      "reticle-coverage-v1\n"
      "  --profile-folded=<file|->              collapsed-stack flamegraph "
      "fold of the\n"
      "                                         recorded tracing spans\n"
      "\n"
      "run mode (execute instead of printing an artifact):\n"
      "  --run=<trace.json>                     execute over this input "
      "trace\n"
      "  --cycles=N                             simulate only the first N "
      "cycles\n"
      "  --sim=interp|netlist|vm-ir|vm-netlist|both\n"
      "                                         engine selection (both)\n"
      "  --vcd=<file|->                         waveform as standard VCD\n"
      "  --wave-json=<file|->                   waveform as reticle-wave-v1 "
      "JSONL\n"
      "  --dump-sim-program=<file|->            compiled sim bytecode "
      "disassembly\n"
      "  --profile-sim=<file|->                 per-op VM execution profile "
      "as a\n"
      "                                         reticle-profile-v1 doc\n"
      "\n"
      "batch mode (several inputs):\n"
      "  --jobs=N                               worker threads (default: "
      "cores)\n"
      "  --out-dir=<dir>                        per-input artifacts land "
      "here (.)\n"
      "  --schedule-from=<summary.json>         schedule by measured timings "
      "from a\n"
      "                                         prior run's batch summary\n"
      "\n"
      "other:\n"
      "  --dump-target                          print the UltraScale TDL\n"
      "  --version                              print the version and exit\n"
      "  --help                                 print this help and exit\n",
      Argv0);
}

int usage(const char *Argv0) {
  printUsage(stderr, Argv0);
  return 2;
}

/// The invocation itself was wrong: bad flag value, unreadable input,
/// unwritable output. Distinct from a program that fails to compile.
int usageError(const std::string &Message) {
  std::fprintf(stderr, "reticlec: error: %s\n", Message.c_str());
  return 2;
}

/// An input program failed to parse or compile.
int compileError(const std::string &Message) {
  std::fprintf(stderr, "reticlec: error: %s\n", Message.c_str());
  return 1;
}

bool isKnownStage(const std::string &Stage) {
  return Stage == "parse" || Stage == "opt" || Stage == "isel" ||
         Stage == "cascade" || Stage == "place" || Stage == "codegen";
}

bool isKnownPass(const std::string &Name) {
  for (const std::string &P : core::pipelinePassNames())
    if (P == Name)
      return true;
  return false;
}

bool endsWith(const std::string &Text, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return Text.size() >= N &&
         Text.compare(Text.size() - N, N, Suffix) == 0;
}

/// Writes \p Text to \p Path, or to stdout when \p Path is "-".
Status writeTextOutput(const std::string &Path, const std::string &Text) {
  if (Path == "-") {
    std::fputs(Text.c_str(), stdout);
    return Status::success();
  }
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write '" + Path + "'");
  Out << Text;
  return Status::success();
}

/// Writes the standalone `reticle-coverage-v1` document for \p Program
/// over the bins in \p Spaces to \p Path ("-" streams to stdout); a no-op
/// when no --coverage path was given.
Status writeCoverage(const std::string &Path, const std::string &Program,
                     const obs::CoverageSnapshot &Spaces) {
  if (Path.empty())
    return Status::success();
  return writeTextOutput(Path, obs::coverageDoc(Program, Spaces).str(2) + "\n");
}

/// Everything parsed from the command line.
struct DriverArgs {
  std::string Emit = "verilog";
  std::vector<std::string> Inputs;
  std::string OutputPath;
  std::string StatsJsonPath;
  std::string TracePath;
  std::string DumpDir;
  std::string DumpStage;
  std::string RemarksPath;
  std::string RemarksJsonPath;
  std::string FloorplanPath;
  std::string FloorplanTimelinePath;
  std::string OutDir = ".";
  std::string SatProofPath;
  std::string ScheduleFromPath;
  unsigned Jobs = 0;
  bool Stats = false;
  core::CompileOptions Options;
  std::string RunTracePath;
  std::string SimEngine = "both";
  std::string VcdPath;
  std::string WaveJsonPath;
  std::string DumpSimProgramPath;
  std::string CoveragePath;
  std::string ProfileSimPath;
  std::string ProfileFoldedPath;
  uint64_t Cycles = 0;
  bool CyclesSet = false;
  bool SimSet = false;
};

/// The compile error message for a failed pipeline run: parse failures
/// carry the input path, later stages speak for themselves (matching the
/// historical driver output).
std::string pipelineErrorMessage(const core::CompileSession &Session,
                                 const std::string &InputPath,
                                 const std::string &Error) {
  for (const core::CompileSession::Diagnostic &D : Session.diagnostics())
    if (D.Stage == "parse" && D.Message == Error)
      return InputPath + ": " + Error;
  return Error;
}

std::string primaryArtifactText(const core::CompileResult &R,
                                const std::string &Emit) {
  if (Emit == "asm")
    return R.Asm.str();
  if (Emit == "placed")
    return R.Placed.str();
  return R.Verilog.str();
}

/// Compiles one input inside its own session. This is the whole
/// single-input driver minus argument parsing.
int runSingle(const DriverArgs &Args) {
  const std::string &InputPath = Args.Inputs.front();
  std::ifstream In(InputPath);
  if (!In)
    return usageError("cannot open '" + InputPath + "'");
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  if (Args.Emit == "behavioral") {
    // The behavioral translation bypasses the Figure-7 pipeline: parse
    // and optimize by hand, then emit.
    Result<ir::Function> Fn = ir::parseFunction(Buffer.str());
    if (!Fn)
      return compileError(InputPath + ": " + Fn.error());
    if (Args.Options.Optimize) {
      unsigned Folded = opt::constantFold(Fn.value());
      unsigned Dead = opt::deadCodeElim(Fn.value());
      unsigned Vectors = opt::vectorize(Fn.value());
      if (Args.Stats)
        std::fprintf(stderr,
                     "opt: folded %u, removed %u dead, formed %u vector "
                     "op(s)\n",
                     Folded, Dead, Vectors);
    }
    std::string Output =
        synth::emitBehavioral(Fn.value(), synth::Mode::Hint).str();
    if (Args.OutputPath.empty()) {
      std::fputs(Output.c_str(), stdout);
      return 0;
    }
    if (Status S = writeTextOutput(Args.OutputPath, Output); !S)
      return usageError(S.error());
    return 0;
  }

  core::CompileSession Session;
  if (!Args.TracePath.empty() || !Args.ProfileFoldedPath.empty())
    Session.telemetry().enableTracing();
  if (!Args.RemarksPath.empty() || !Args.RemarksJsonPath.empty())
    Session.remarks().enable();
  bool WantSnapshots = !Args.DumpDir.empty() || !Args.DumpStage.empty();
  if (WantSnapshots)
    Session.captureSnapshots();

  Result<core::CompileResult> R =
      core::compileSource(Buffer.str(), InputPath, Args.Options, Session);

  // Remarks and traces flush whether or not the compile succeeded: when a
  // placement is infeasible, the sat:core remarks naming the binding
  // constraints are the whole point of asking for remarks.
  auto FlushDiagnostics = [&]() -> Status {
    if (!Args.RemarksPath.empty()) {
      if (Args.RemarksPath == "-") {
        std::fputs(Session.remarks().text().c_str(), stdout);
      } else if (Status S = Session.remarks().writeText(Args.RemarksPath);
                 !S) {
        return S;
      }
    }
    if (!Args.RemarksJsonPath.empty()) {
      if (Args.RemarksJsonPath == "-") {
        std::fputs(Session.remarks().jsonl(InputPath).c_str(), stdout);
      } else if (Status S = Session.remarks().writeJsonl(
                     Args.RemarksJsonPath, InputPath);
                 !S) {
        return S;
      }
    }
    if (!Args.TracePath.empty()) {
      if (Args.TracePath == "-") {
        std::fputs((Session.telemetry().traceJson() + "\n").c_str(), stdout);
      } else if (Status S = Session.telemetry().writeTrace(Args.TracePath);
                 !S) {
        return S;
      }
    }
    // The flamegraph fold flushes like the raw trace does: the spans of
    // a failed compile are exactly what explains where it spent time.
    if (!Args.ProfileFoldedPath.empty())
      if (Status S = writeTextOutput(Args.ProfileFoldedPath,
                                     Session.telemetry().foldedStacks());
          !S)
        return S;
    // Coverage flushes like remarks do: a failed compile still reports
    // the bins the stages it passed through recorded.
    if (Status S = writeCoverage(Args.CoveragePath, InputPath,
                                 Session.coverage().snapshot());
        !S)
      return S;
    return Status::success();
  };

  if (!R) {
    if (Status S = FlushDiagnostics(); !S)
      std::fprintf(stderr, "reticlec: error: %s\n", S.error().c_str());
    return compileError(pipelineErrorMessage(Session, InputPath, R.error()));
  }

  if (Args.Options.Optimize && Args.Stats)
    std::fprintf(stderr,
                 "opt: folded %u, removed %u dead, formed %u vector "
                 "op(s)\n",
                 R.value().Opt.Folded, R.value().Opt.Dead,
                 R.value().Opt.Vectorized);

  std::string Output = primaryArtifactText(R.value(), Args.Emit);

  obs::Json Doc = core::statsJson(R.value(), InputPath, Session.context());
  if (Args.Stats)
    obs::printTable(Doc, stderr);
  if (!Args.StatsJsonPath.empty()) {
    if (Args.StatsJsonPath == "-") {
      std::fputs((Doc.str(2) + "\n").c_str(), stdout);
    } else if (Status S = obs::writeJsonFile(Doc, Args.StatsJsonPath); !S) {
      return usageError(S.error());
    }
  }

  if (!Args.DumpDir.empty())
    if (Status S =
            obs::writeSnapshots(Session.snapshots(), Args.DumpDir, InputPath);
        !S)
      return usageError(S.error());
  if (!Args.DumpStage.empty()) {
    const obs::StageSnapshot *Snap =
        Session.snapshots().find(Args.DumpStage);
    if (!Snap)
      return compileError("no snapshot recorded for stage '" +
                          Args.DumpStage + "'");
    std::fprintf(stderr, "; after %s\n", Snap->Stage.c_str());
    std::fputs(Snap->Text.c_str(), stderr);
  }

  if (!Args.FloorplanPath.empty()) {
    bool Ascii =
        Args.FloorplanPath == "-" || endsWith(Args.FloorplanPath, ".txt");
    std::string Plan =
        Ascii ? place::floorplanAscii(R.value().Placed, Args.Options.Dev)
              : place::floorplanSvg(R.value().Placed, Args.Options.Dev);
    if (Status S = writeTextOutput(Args.FloorplanPath, Plan); !S)
      return usageError(S.error());
  }
  if (!Args.FloorplanTimelinePath.empty()) {
    std::string Plan = place::floorplanTimelineSvg(
        R.value().Placed, Args.Options.Dev, R.value().PlaceStats);
    if (Status S = writeTextOutput(Args.FloorplanTimelinePath, Plan); !S)
      return usageError(S.error());
  }

  // The proof log flushes with the other artifacts: DIMACS-notation learnt
  // additions/deletions, one `c`-delimited section per placement solve.
  if (!Args.SatProofPath.empty())
    if (Status S = writeTextOutput(Args.SatProofPath, R.value().SatProof);
        !S)
      return usageError(S.error());

  if (Status S = FlushDiagnostics(); !S)
    return usageError(S.error());

  if (Args.OutputPath.empty()) {
    std::fputs(Output.c_str(), stdout);
    return 0;
  }
  std::ofstream Out(Args.OutputPath);
  if (!Out)
    return usageError("cannot write '" + Args.OutputPath + "'");
  Out << Output;
  return 0;
}

/// Compiles one input, then executes it over the --run input trace with
/// the selected engine(s), streaming waveforms and checking both engines
/// against each other in --sim=both mode.
int runExecute(const DriverArgs &Args) {
  const std::string &InputPath = Args.Inputs.front();
  std::ifstream In(InputPath);
  if (!In)
    return usageError("cannot open '" + InputPath + "'");
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  std::ifstream TraceIn(Args.RunTracePath);
  if (!TraceIn)
    return usageError("cannot open '" + Args.RunTracePath + "'");
  std::stringstream TraceBuffer;
  TraceBuffer << TraceIn.rdbuf();

  core::CompileSession Session;
  if (!Args.TracePath.empty() || !Args.ProfileFoldedPath.empty())
    Session.telemetry().enableTracing();
  if (!Args.RemarksPath.empty() || !Args.RemarksJsonPath.empty())
    Session.remarks().enable();

  Result<core::CompileResult> R =
      core::compileSource(Source, InputPath, Args.Options, Session);

  // Remarks and traces flush whether or not the compile or the
  // simulation succeeded, mirroring runSingle.
  auto FlushDiagnostics = [&]() -> Status {
    if (!Args.RemarksPath.empty()) {
      if (Args.RemarksPath == "-") {
        std::fputs(Session.remarks().text().c_str(), stdout);
      } else if (Status S = Session.remarks().writeText(Args.RemarksPath);
                 !S) {
        return S;
      }
    }
    if (!Args.RemarksJsonPath.empty()) {
      if (Args.RemarksJsonPath == "-") {
        std::fputs(Session.remarks().jsonl(InputPath).c_str(), stdout);
      } else if (Status S = Session.remarks().writeJsonl(
                     Args.RemarksJsonPath, InputPath);
                 !S) {
        return S;
      }
    }
    if (!Args.TracePath.empty()) {
      if (Args.TracePath == "-") {
        std::fputs((Session.telemetry().traceJson() + "\n").c_str(), stdout);
      } else if (Status S = Session.telemetry().writeTrace(Args.TracePath);
                 !S) {
        return S;
      }
    }
    // The flamegraph fold flushes like the raw trace does, aborted runs
    // included.
    if (!Args.ProfileFoldedPath.empty())
      if (Status S = writeTextOutput(Args.ProfileFoldedPath,
                                     Session.telemetry().foldedStacks());
          !S)
        return S;
    // Coverage flushes like remarks do; after a completed run it also
    // carries the sim.toggle bins the replay below recorded.
    if (Status S = writeCoverage(Args.CoveragePath, InputPath,
                                 Session.coverage().snapshot());
        !S)
      return S;
    return Status::success();
  };

  if (!R) {
    if (Status S = FlushDiagnostics(); !S)
      std::fprintf(stderr, "reticlec: error: %s\n", S.error().c_str());
    return compileError(pipelineErrorMessage(Session, InputPath, R.error()));
  }

  // The interpreter engine executes the source program; the netlist
  // engine executes the compiled structural Verilog.
  Result<ir::Function> Fn = ir::parseFunction(Source);
  if (!Fn)
    return compileError(InputPath + ": " + Fn.error());

  Result<interp::Trace> InputTrace =
      sim::parseInputTrace(TraceBuffer.str(), Fn.value());
  if (!InputTrace) {
    if (Status S = FlushDiagnostics(); !S)
      std::fprintf(stderr, "reticlec: error: %s\n", S.error().c_str());
    return compileError(Args.RunTracePath + ": " + InputTrace.error());
  }
  interp::Trace Drive = InputTrace.take();
  if (Args.CyclesSet) {
    if (Args.Cycles > Drive.size())
      return compileError(Args.RunTracePath + ": trace has " +
                          std::to_string(Drive.size()) +
                          " cycle(s), --cycles=" +
                          std::to_string(Args.Cycles) + " requested");
    Drive.steps().resize(Args.Cycles);
  }

  bool Both = Args.SimEngine == "both";
  bool RunInterp = Both || Args.SimEngine == "interp";
  bool RunNetlist = Both || Args.SimEngine == "netlist";
  bool RunVmIr = Both || Args.SimEngine == "vm-ir";
  bool RunVmNetlist = Both || Args.SimEngine == "vm-netlist";
  bool WantWave = !Args.VcdPath.empty() || !Args.WaveJsonPath.empty();
  // Toggle coverage replays the same captures the waveform writers use,
  // so a coverage or stats request keeps the captures alive too.
  bool WantCoverage =
      !Args.CoveragePath.empty() || !Args.StatsJsonPath.empty();
  bool Capture = WantWave || WantCoverage;

  // The compiled-simulation programs: the VM engines execute them, and
  // --dump-sim-program disassembles both regardless of engine selection.
  bool WantPrograms =
      RunVmIr || RunVmNetlist || !Args.DumpSimProgramPath.empty();
  Result<sim::Program> IrProgram = fail<sim::Program>("not compiled");
  Result<sim::Program> NetProgram = fail<sim::Program>("not compiled");
  if (WantPrograms) {
    IrProgram = sim::compile(Fn.value(), Session.context());
    NetProgram = sim::compile(R.value().Verilog, Session.context());
  }
  if (!Args.DumpSimProgramPath.empty()) {
    if (!IrProgram)
      return compileError("vm-ir: " + IrProgram.error());
    if (!NetProgram)
      return compileError("vm-netlist: " + NetProgram.error());
    std::string Text = sim::disassemble(IrProgram.value()) +
                       sim::disassemble(NetProgram.value());
    if (Status S = writeTextOutput(Args.DumpSimProgramPath, Text); !S)
      return usageError(S.error());
  }

  sim::WaveCapture InterpWave, NetlistWave, VmIrWave, VmNetlistWave;
  Result<interp::Trace> InterpOut = fail<interp::Trace>("not run");
  Result<interp::Trace> NetlistOut = fail<interp::Trace>("not run");
  Result<interp::Trace> VmIrOut = fail<interp::Trace>("not run");
  Result<interp::Trace> VmNetlistOut = fail<interp::Trace>("not run");
  if (RunInterp)
    InterpOut = interp::interpret(Fn.value(), Drive,
                                  Capture ? &InterpWave : nullptr,
                                  Session.context());
  if (RunNetlist)
    NetlistOut = codegen::simulate(R.value().Verilog, Drive,
                                   Capture ? &NetlistWave : nullptr,
                                   Session.context());
  // --profile-sim attaches the profiled executor to one VM engine: vm-ir
  // when it runs (the primary in --sim=both mode), vm-netlist otherwise.
  bool ProfileIr = !Args.ProfileSimPath.empty() && RunVmIr;
  bool ProfileNet = !Args.ProfileSimPath.empty() && !RunVmIr && RunVmNetlist;
  sim::VmProfile Profile;
  if (RunVmIr)
    VmIrOut = !IrProgram ? fail<interp::Trace>(IrProgram.error())
              : ProfileIr
                  ? sim::execute(IrProgram.value(), Drive, Profile,
                                 Capture ? &VmIrWave : nullptr,
                                 Session.context())
                  : sim::execute(IrProgram.value(), Drive,
                                 Capture ? &VmIrWave : nullptr,
                                 Session.context());
  if (RunVmNetlist)
    VmNetlistOut = !NetProgram
                       ? fail<interp::Trace>(NetProgram.error())
                   : ProfileNet
                       ? sim::execute(NetProgram.value(), Drive, Profile,
                                      Capture ? &VmNetlistWave : nullptr,
                                      Session.context())
                       : sim::execute(NetProgram.value(), Drive,
                                      Capture ? &VmNetlistWave : nullptr,
                                      Session.context());

  // The sim profile flushes before the engine-failure checks below, so an
  // aborted run still reports the ops it retired (Aborted marked true).
  if (ProfileIr || ProfileNet) {
    const Result<sim::Program> &Prog = ProfileIr ? IrProgram : NetProgram;
    if (Prog)
      if (Status S = writeTextOutput(
              Args.ProfileSimPath,
              sim::profileJson(Prog.value(), Profile).str(2) + "\n");
          !S)
        return usageError(S.error());
  }

  auto CaptureSources =
      [&]() -> std::vector<std::pair<const sim::WaveCapture *, std::string>> {
    std::vector<std::pair<const sim::WaveCapture *, std::string>> Sources;
    if (RunInterp)
      Sources.push_back({&InterpWave, "interp"});
    if (RunNetlist)
      Sources.push_back({&NetlistWave, "netlist"});
    if (RunVmIr)
      Sources.push_back({&VmIrWave, "vm-ir"});
    if (RunVmNetlist)
      Sources.push_back({&VmNetlistWave, "vm-netlist"});
    // A single engine streams unprefixed, matching the pre-VM layout.
    if (Sources.size() == 1)
      Sources.front().second = "";
    return Sources;
  };

  // Dynamic toggle coverage: replay the captured run(s) — complete or
  // aborted — into the session's coverage registry as per-signal-bit
  // 0->1 / 1->0 bins, per-engine-prefixed in --sim=both mode. The stats
  // document and the --coverage doc render afterwards, so both see the
  // sim.toggle space.
  if (Capture) {
    sim::ToggleCoverageSink Toggles(Session.coverage());
    if (Status S = sim::replay(CaptureSources(), Toggles); !S)
      return compileError(S.error());
  }

#ifndef RETICLE_NO_TELEMETRY
  // Waveforms are written from the in-memory captures after the run —
  // including aborted runs, whose partial captures replay with the
  // aborted marker so the artifacts stay parseable.
  auto WriteWaves = [&]() -> Status {
    if (!WantWave)
      return Status::success();
    std::vector<std::pair<const sim::WaveCapture *, std::string>> Sources =
        CaptureSources();
    std::string Top = std::filesystem::path(InputPath).stem().string();
    if (Top.empty())
      Top = "reticle";
    if (!Args.VcdPath.empty()) {
      sim::VcdWriter Vcd(Top);
      if (Status S = sim::replay(Sources, Vcd); !S)
        return S;
      if (Status S = writeTextOutput(Args.VcdPath, Vcd.text()); !S)
        return S;
    }
    if (!Args.WaveJsonPath.empty()) {
      sim::WaveJsonWriter Wj(Top, Args.SimEngine.c_str());
      if (Status S = sim::replay(Sources, Wj); !S)
        return S;
      if (Status S = writeTextOutput(Args.WaveJsonPath, Wj.text()); !S)
        return S;
    }
    return Status::success();
  };
  if (Status S = WriteWaves(); !S)
    return usageError(S.error());
#endif

  // Stats render after the run so the sim.* counters are populated.
  obs::Json Doc = core::statsJson(R.value(), InputPath, Session.context());
  if (Args.Stats)
    obs::printTable(Doc, stderr);
  if (!Args.StatsJsonPath.empty()) {
    if (Args.StatsJsonPath == "-") {
      std::fputs((Doc.str(2) + "\n").c_str(), stdout);
    } else if (Status S = obs::writeJsonFile(Doc, Args.StatsJsonPath); !S) {
      return usageError(S.error());
    }
  }

  if (Status S = FlushDiagnostics(); !S)
    return usageError(S.error());

  if (RunInterp && !InterpOut)
    return compileError("interp: " + InterpOut.error());
  if (RunNetlist && !NetlistOut)
    return compileError("netlist: " + NetlistOut.error());
  if (RunVmIr && !VmIrOut)
    return compileError("vm-ir: " + VmIrOut.error());
  if (RunVmNetlist && !VmNetlistOut)
    return compileError("vm-netlist: " + VmNetlistOut.error());

  // The differential checks: every output port, cycle for cycle,
  // compared through the flattened bit representation. In both mode the
  // tree engines check against each other as before, and each VM engine
  // checks against the tree engine it was compiled from.
  auto DiffTraces = [&](const char *NameA, const interp::Trace &A,
                        const char *NameB, const interp::Trace &B) -> int {
    for (size_t Cycle = 0; Cycle < Drive.size(); ++Cycle) {
      for (const ir::Port &P : Fn.value().outputs()) {
        const interp::Value *Va = A.get(Cycle, P.Name);
        const interp::Value *Vb = B.get(Cycle, P.Name);
        if (!Va || !Vb || Va->toBits() != Vb->toBits())
          return compileError(
              std::string(NameA) + " vs " + NameB +
              " divergence at cycle " + std::to_string(Cycle) +
              ", signal '" + P.Name + "': " + NameA + " " +
              (Va ? sim::bitsToString(Va->toBits()) : "<missing>") + ", " +
              NameB + " " +
              (Vb ? sim::bitsToString(Vb->toBits()) : "<missing>"));
      }
    }
    return 0;
  };
  if (RunInterp && RunNetlist)
    if (int Rc = DiffTraces("interp", InterpOut.value(), "netlist",
                            NetlistOut.value()))
      return Rc;
  if (RunVmIr && RunInterp)
    if (int Rc = DiffTraces("vm-ir", VmIrOut.value(), "interp",
                            InterpOut.value()))
      return Rc;
  if (RunVmNetlist && RunNetlist)
    if (int Rc = DiffTraces("vm-netlist", VmNetlistOut.value(), "netlist",
                            NetlistOut.value()))
      return Rc;

  std::fprintf(stderr, "reticlec: run: %s: %zu cycle(s), sim=%s: ok\n",
               InputPath.c_str(), Drive.size(), Args.SimEngine.c_str());
  return 0;
}

/// Compiles every input concurrently and writes per-input artifacts plus
/// the merged batch summary.
int runBatch(const DriverArgs &Args) {
  for (const auto &[Flag, Value] :
       {std::pair<const char *, const std::string *>{"-o", &Args.OutputPath},
        {"--dump-after", &Args.DumpStage},
        {"--floorplan", &Args.FloorplanPath},
        {"--floorplan-timeline", &Args.FloorplanTimelinePath},
        {"--profile-folded", &Args.ProfileFoldedPath},
        {"--sat-proof", &Args.SatProofPath},
        {"--print-before", &Args.Options.PrintBefore}})
    if (!Value->empty())
      return usageError(std::string(Flag) +
                        " applies to a single input; with several inputs "
                        "use --out-dir");
  if (Args.Emit == "behavioral")
    return usageError("--emit=behavioral applies to a single input");

  // Read every input up front, and derive a unique artifact stem per
  // input from its file name.
  std::vector<core::BatchInput> Inputs;
  std::vector<std::string> Stems;
  std::set<std::string> SeenStems;
  for (const std::string &Path : Args.Inputs) {
    std::ifstream In(Path);
    if (!In)
      return usageError("cannot open '" + Path + "'");
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Inputs.push_back({Path, Buffer.str()});
    std::string Stem = std::filesystem::path(Path).stem().string();
    if (Stem.empty())
      Stem = "input" + std::to_string(Stems.size());
    if (!SeenStems.insert(Stem).second)
      return usageError("inputs '" + Path +
                        "' and an earlier input share the artifact stem '" +
                        Stem + "'; rename one");
    Stems.push_back(Stem);
  }

  std::error_code Ec;
  std::filesystem::create_directories(Args.OutDir, Ec);
  if (Ec)
    return usageError("cannot create '" + Args.OutDir +
                      "': " + Ec.message());

  core::BatchOptions Batch;
  Batch.Options = Args.Options;
  Batch.Jobs = Args.Jobs;
  // A prior run's summary turns the statement-count schedule heuristic
  // into measured timings (see core::batchMeasuredCosts).
  if (!Args.ScheduleFromPath.empty()) {
    std::ifstream ScheduleIn(Args.ScheduleFromPath);
    if (!ScheduleIn)
      return usageError("cannot open '" + Args.ScheduleFromPath + "'");
    std::stringstream ScheduleBuffer;
    ScheduleBuffer << ScheduleIn.rdbuf();
    Result<obs::Json> Summary = obs::Json::parse(ScheduleBuffer.str());
    if (!Summary)
      return usageError(Args.ScheduleFromPath + ": " + Summary.error());
    Batch.MeasuredCostMs = core::batchMeasuredCosts(Summary.value());
  }
  Batch.CaptureSnapshots = !Args.DumpDir.empty();
  Batch.EnableRemarks =
      !Args.RemarksPath.empty() || !Args.RemarksJsonPath.empty();
  Batch.EnableTracing = !Args.TracePath.empty();
  unsigned Jobs = core::batchJobCount(Batch, Inputs.size());

  std::vector<core::BatchItem> Items = core::compileBatch(Inputs, Batch);

  const char *Ext = Args.Emit == "verilog" ? ".v" : ".rasm";
  int Exit = 0;
  for (size_t I = 0; I < Items.size(); ++I) {
    const core::BatchItem &Item = Items[I];
    std::filesystem::path Base =
        std::filesystem::path(Args.OutDir) / Stems[I];
    if (!Item.ok()) {
      std::string Error =
          Item.Outcome ? Item.Outcome->error() : std::string("not compiled");
      compileError(pipelineErrorMessage(*Item.Session, Item.Name, Error));
      // A failed item still flushes its remarks and trace — the sat:core
      // remarks of an infeasible placement land there.
      if (!Args.RemarksPath.empty())
        if (Status S = Item.Session->remarks().writeText(Base.string() +
                                                         ".remarks.txt");
            !S)
          return usageError(S.error());
      if (!Args.RemarksJsonPath.empty())
        if (Status S = Item.Session->remarks().writeJsonl(
                Base.string() + ".remarks.jsonl", Item.Name);
            !S)
          return usageError(S.error());
      if (!Args.TracePath.empty())
        if (Status S = Item.Session->telemetry().writeTrace(
                Base.string() + ".trace.json");
            !S)
          return usageError(S.error());
      if (!Args.CoveragePath.empty())
        if (Status S = writeCoverage(Base.string() + ".coverage.json",
                                     Item.Name,
                                     Item.Session->coverage().snapshot());
            !S)
          return usageError(S.error());
      Exit = 1;
      continue;
    }
    const core::CompileResult &R = Item.Outcome->value();
    if (Status S = writeTextOutput(Base.string() + Ext,
                                   primaryArtifactText(R, Args.Emit));
        !S)
      return usageError(S.error());
    if (!Args.StatsJsonPath.empty()) {
      obs::Json Doc =
          core::statsJson(R, Item.Name, Item.Session->context());
      if (Status S = obs::writeJsonFile(Doc, Base.string() + ".stats.json");
          !S)
        return usageError(S.error());
    }
    if (!Args.RemarksPath.empty())
      if (Status S =
              Item.Session->remarks().writeText(Base.string() +
                                                ".remarks.txt");
          !S)
        return usageError(S.error());
    if (!Args.RemarksJsonPath.empty())
      if (Status S = Item.Session->remarks().writeJsonl(
              Base.string() + ".remarks.jsonl", Item.Name);
          !S)
        return usageError(S.error());
    if (!Args.TracePath.empty())
      if (Status S = Item.Session->telemetry().writeTrace(Base.string() +
                                                          ".trace.json");
          !S)
        return usageError(S.error());
    if (!Args.CoveragePath.empty())
      if (Status S = writeCoverage(Base.string() + ".coverage.json",
                                   Item.Name,
                                   Item.Session->coverage().snapshot());
          !S)
        return usageError(S.error());
    if (!Args.DumpDir.empty()) {
      std::filesystem::path StageDir =
          std::filesystem::path(Args.DumpDir) / Stems[I];
      if (Status S = obs::writeSnapshots(Item.Session->snapshots(),
                                         StageDir.string(), Item.Name);
          !S)
        return usageError(S.error());
    }
    if (Args.Stats)
      std::fprintf(stderr, "%s: ok (%.1f ms, %u LUT, %u DSP)\n",
                   Item.Name.c_str(), R.Times.TotalMs, R.Util.Luts,
                   R.Util.Dsps);
  }

  if (!Args.StatsJsonPath.empty()) {
    obs::Json Summary = core::batchStatsJson(Items, Jobs);
    if (Args.StatsJsonPath == "-") {
      std::fputs((Summary.str(2) + "\n").c_str(), stdout);
    } else if (Status S = obs::writeJsonFile(Summary, Args.StatsJsonPath);
               !S) {
      return usageError(S.error());
    }
  }
  // The --coverage path receives the batch union (per-input docs landed
  // next to the other per-input artifacts above), mirroring how
  // --stats-json holds the merged summary in batch mode.
  if (Status S =
          writeCoverage(Args.CoveragePath, "batch", core::batchCoverage(Items));
      !S)
    return usageError(S.error());
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverArgs Args;
  std::string DeviceName = "xczu3eg";

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--dump-target") {
      std::fputs(tdl::ultrascaleText().c_str(), stdout);
      return 0;
    }
    if (Arg == "--version") {
      std::printf("reticlec %s\n", RETICLE_VERSION);
      return 0;
    }
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout, Argv[0]);
      return 0;
    }
    if (Arg.rfind("--emit=", 0) == 0) {
      Args.Emit = Arg.substr(7);
    } else if (Arg.rfind("--device=", 0) == 0) {
      DeviceName = Arg.substr(9);
    } else if (Arg.rfind("--stats-json=", 0) == 0) {
      Args.StatsJsonPath = Arg.substr(13);
      if (Args.StatsJsonPath.empty())
        return usageError("--stats-json= requires a file path or '-'");
    } else if (Arg.rfind("--trace=", 0) == 0) {
      Args.TracePath = Arg.substr(8);
      if (Args.TracePath.empty())
        return usageError("--trace= requires a file path or '-'");
    } else if (Arg.rfind("--dump-after-all=", 0) == 0) {
      Args.DumpDir = Arg.substr(17);
      if (Args.DumpDir.empty())
        return usageError("--dump-after-all= requires a directory");
    } else if (Arg.rfind("--dump-after=", 0) == 0) {
      Args.DumpStage = Arg.substr(13);
      if (!isKnownStage(Args.DumpStage))
        return usageError("unknown stage '" + Args.DumpStage +
                          "' (valid: " + std::string(StageChoices) + ")");
    } else if (Arg.rfind("--remarks=", 0) == 0) {
      Args.RemarksPath = Arg.substr(10);
      if (Args.RemarksPath.empty())
        return usageError("--remarks= requires a file path or '-'");
    } else if (Arg.rfind("--remarks-json=", 0) == 0) {
      Args.RemarksJsonPath = Arg.substr(15);
      if (Args.RemarksJsonPath.empty())
        return usageError("--remarks-json= requires a file path or '-'");
    } else if (Arg.rfind("--floorplan=", 0) == 0) {
      Args.FloorplanPath = Arg.substr(12);
      if (Args.FloorplanPath.empty())
        return usageError("--floorplan= requires a file path or '-'");
    } else if (Arg.rfind("--floorplan-timeline=", 0) == 0) {
      Args.FloorplanTimelinePath = Arg.substr(21);
      if (Args.FloorplanTimelinePath.empty())
        return usageError("--floorplan-timeline= requires a file path or "
                          "'-'");
    } else if (Arg.rfind("--disable-pass=", 0) == 0) {
      std::string Name = Arg.substr(15);
      if (!isKnownPass(Name))
        return usageError("unknown pass '" + Name +
                          "' (valid: " + std::string(PassChoices) + ")");
      if (!core::isPassDisableable(Name))
        return usageError("pass '" + Name +
                          "' cannot be disabled (disableable: " +
                          std::string(DisableablePasses) + ")");
      if (!Args.Options.isPassDisabled(Name))
        Args.Options.DisabledPasses.push_back(Name);
    } else if (Arg.rfind("--print-before=", 0) == 0) {
      std::string Name = Arg.substr(15);
      if (!isKnownPass(Name))
        return usageError("unknown pass '" + Name +
                          "' (valid: " + std::string(PassChoices) + ")");
      Args.Options.PrintBefore = Name;
    } else if (Arg.rfind("--run=", 0) == 0) {
      Args.RunTracePath = Arg.substr(6);
      if (Args.RunTracePath.empty())
        return usageError("--run= requires an input-trace file");
    } else if (Arg.rfind("--cycles=", 0) == 0) {
      std::string Value = Arg.substr(9);
      char *End = nullptr;
      unsigned long long N = std::strtoull(Value.c_str(), &End, 10);
      if (Value.empty() || *End != '\0')
        return usageError("--cycles= requires a cycle count");
      Args.Cycles = N;
      Args.CyclesSet = true;
    } else if (Arg.rfind("--sim=", 0) == 0) {
      Args.SimEngine = Arg.substr(6);
      Args.SimSet = true;
      if (Args.SimEngine != "interp" && Args.SimEngine != "netlist" &&
          Args.SimEngine != "vm-ir" && Args.SimEngine != "vm-netlist" &&
          Args.SimEngine != "both")
        return usageError("unknown --sim engine '" + Args.SimEngine +
                          "' (valid: interp, netlist, vm-ir, vm-netlist, "
                          "both)");
    } else if (Arg.rfind("--vcd=", 0) == 0) {
      Args.VcdPath = Arg.substr(6);
      if (Args.VcdPath.empty())
        return usageError("--vcd= requires a file path or '-'");
    } else if (Arg.rfind("--wave-json=", 0) == 0) {
      Args.WaveJsonPath = Arg.substr(12);
      if (Args.WaveJsonPath.empty())
        return usageError("--wave-json= requires a file path or '-'");
    } else if (Arg.rfind("--dump-sim-program=", 0) == 0) {
      Args.DumpSimProgramPath = Arg.substr(19);
      if (Args.DumpSimProgramPath.empty())
        return usageError("--dump-sim-program= requires a file path or '-'");
    } else if (Arg.rfind("--coverage=", 0) == 0) {
      Args.CoveragePath = Arg.substr(11);
      if (Args.CoveragePath.empty())
        return usageError("--coverage= requires a file path or '-'");
    } else if (Arg.rfind("--profile-sim=", 0) == 0) {
      Args.ProfileSimPath = Arg.substr(14);
      if (Args.ProfileSimPath.empty())
        return usageError("--profile-sim= requires a file path or '-'");
    } else if (Arg.rfind("--profile-folded=", 0) == 0) {
      Args.ProfileFoldedPath = Arg.substr(17);
      if (Args.ProfileFoldedPath.empty())
        return usageError("--profile-folded= requires a file path or '-'");
    } else if (Arg.rfind("--sat-solver=", 0) == 0) {
      std::string Value = Arg.substr(13);
      if (Value == "scratch")
        Args.Options.SatMode = place::SatMode::Scratch;
      else if (Value == "incremental")
        Args.Options.SatMode = place::SatMode::Incremental;
      else if (Value == "portfolio")
        Args.Options.SatMode = place::SatMode::Portfolio;
      else
        return usageError("unknown --sat-solver '" + Value +
                          "' (valid: scratch, incremental, portfolio)");
    } else if (Arg.rfind("--sat-threads=", 0) == 0) {
      std::string Value = Arg.substr(14);
      char *End = nullptr;
      unsigned long Lanes = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || *End != '\0' || Lanes == 0 || Lanes > 8)
        return usageError("--sat-threads= requires a lane count from 1 to 8");
      Args.Options.SatThreads = static_cast<unsigned>(Lanes);
    } else if (Arg.rfind("--sat-proof=", 0) == 0) {
      Args.SatProofPath = Arg.substr(12);
      if (Args.SatProofPath.empty())
        return usageError("--sat-proof= requires a file path or '-'");
      Args.Options.SatProof = true;
    } else if (Arg.rfind("--schedule-from=", 0) == 0) {
      Args.ScheduleFromPath = Arg.substr(16);
      if (Args.ScheduleFromPath.empty())
        return usageError("--schedule-from= requires a summary file");
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      std::string Value = Arg.substr(7);
      char *End = nullptr;
      unsigned long Jobs = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || *End != '\0' || Jobs == 0 || Jobs > 1024)
        return usageError("--jobs= requires a positive thread count");
      Args.Jobs = static_cast<unsigned>(Jobs);
    } else if (Arg.rfind("--out-dir=", 0) == 0) {
      Args.OutDir = Arg.substr(10);
      if (Args.OutDir.empty())
        return usageError("--out-dir= requires a directory");
    } else if (Arg == "-O") {
      Args.Options.Optimize = true;
    } else if (Arg == "--no-cascade") {
      Args.Options.Cascade = false;
    } else if (Arg == "--no-shrink") {
      Args.Options.Shrink = false;
    } else if (Arg == "--stats") {
      Args.Stats = true;
    } else if (Arg == "-o") {
      if (++I >= Argc)
        return usage(Argv[0]);
      Args.OutputPath = Argv[I];
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "reticlec: unknown option '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else {
      Args.Inputs.push_back(Arg);
    }
  }
  if (Args.Inputs.empty())
    return usage(Argv[0]);

  if (Args.Emit != "asm" && Args.Emit != "placed" &&
      Args.Emit != "verilog" && Args.Emit != "behavioral")
    return usageError("unknown --emit kind '" + Args.Emit +
                      "' (valid: " + EmitChoices + ")");

  if (DeviceName == "xczu3eg")
    Args.Options.Dev = device::Device::xczu3eg();
  else if (DeviceName == "small")
    Args.Options.Dev = device::Device::small();
  else if (DeviceName == "tiny")
    Args.Options.Dev = device::Device::tiny();
  else
    return usageError("unknown --device '" + DeviceName +
                      "' (valid: " + DeviceChoices + ")");

#ifdef RETICLE_NO_TELEMETRY
  // Coverage recording and profiling are part of the telemetry surface; a
  // compiled-out build still compiles (and runs) everything, it just
  // cannot report coverage or profiles.
  if (!Args.CoveragePath.empty())
    return usageError("--coverage requires a telemetry-enabled build "
                      "(RETICLE_NO_TELEMETRY is set)");
  if (!Args.ProfileSimPath.empty())
    return usageError("--profile-sim requires a telemetry-enabled build "
                      "(RETICLE_NO_TELEMETRY is set)");
  if (!Args.ProfileFoldedPath.empty())
    return usageError("--profile-folded requires a telemetry-enabled build "
                      "(RETICLE_NO_TELEMETRY is set)");
#endif

  if (Args.Emit == "behavioral") {
    // Everything below observes the Figure-7 pipeline, which the
    // behavioral translation bypasses entirely.
    const std::pair<const char *, const std::string *> PipelineOnly[] = {
        {"--stats-json", &Args.StatsJsonPath},
        {"--dump-after-all", &Args.DumpDir},
        {"--dump-after", &Args.DumpStage},
        {"--remarks", &Args.RemarksPath},
        {"--remarks-json", &Args.RemarksJsonPath},
        {"--floorplan", &Args.FloorplanPath},
        {"--floorplan-timeline", &Args.FloorplanTimelinePath},
        {"--print-before", &Args.Options.PrintBefore},
        {"--coverage", &Args.CoveragePath},
        {"--profile-folded", &Args.ProfileFoldedPath},
        {"--sat-proof", &Args.SatProofPath},
    };
    for (const auto &[Flag, Value] : PipelineOnly)
      if (!Value->empty())
        return usageError(std::string(Flag) +
                          " requires a pipeline emit kind "
                          "(asm, placed, verilog)");
    if (!Args.Options.DisabledPasses.empty())
      return usageError("--disable-pass requires a pipeline emit kind "
                        "(asm, placed, verilog)");
  }

  if (!Args.ScheduleFromPath.empty() && Args.Inputs.size() <= 1)
    return usageError("--schedule-from applies to batch mode "
                      "(several inputs)");

  if (Args.RunTracePath.empty()) {
    if (Args.CyclesSet || Args.SimSet || !Args.VcdPath.empty() ||
        !Args.WaveJsonPath.empty() || !Args.DumpSimProgramPath.empty() ||
        !Args.ProfileSimPath.empty())
      return usageError("--cycles/--sim/--vcd/--wave-json/"
                        "--dump-sim-program/--profile-sim require --run");
  } else {
    if (Args.Inputs.size() > 1)
      return usageError("--run applies to a single input");
    if (Args.Emit == "behavioral")
      return usageError("--run requires a pipeline emit kind "
                        "(asm, placed, verilog)");
    const std::pair<const char *, const std::string *> NotInRunMode[] = {
        {"-o", &Args.OutputPath},
        {"--dump-after", &Args.DumpStage},
        {"--dump-after-all", &Args.DumpDir},
        {"--floorplan", &Args.FloorplanPath},
        {"--floorplan-timeline", &Args.FloorplanTimelinePath},
        {"--sat-proof", &Args.SatProofPath},
        {"--print-before", &Args.Options.PrintBefore},
    };
    for (const auto &[Flag, Value] : NotInRunMode)
      if (!Value->empty())
        return usageError(std::string(Flag) + " does not apply with --run");
    if (!Args.ProfileSimPath.empty() && Args.SimEngine != "both" &&
        Args.SimEngine != "vm-ir" && Args.SimEngine != "vm-netlist")
      return usageError("--profile-sim requires a VM engine "
                        "(--sim=vm-ir, vm-netlist, or both)");
#ifdef RETICLE_NO_TELEMETRY
    if (!Args.VcdPath.empty() || !Args.WaveJsonPath.empty())
      return usageError("--vcd/--wave-json require a telemetry-enabled "
                        "build (RETICLE_NO_TELEMETRY is set)");
#endif
    return runExecute(Args);
  }

  return Args.Inputs.size() > 1 ? runBatch(Args) : runSingle(Args);
}
