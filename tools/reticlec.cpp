//===- tools/reticlec.cpp - The Reticle compiler driver -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Command-line front end for the compilation pipeline of Figure 7:
/// reads an intermediate-language program and emits assembly, placed
/// assembly, or structural Verilog with layout annotations. Also exposes
/// the behavioral-Verilog translation backend used to build the paper's
/// baselines, the built-in target description, the front-end optimization
/// passes of Section 8.2, and the introspection surface: per-stage
/// program snapshots, optimization remarks, and a placement floorplan.
///
/// Usage:
///   reticlec [options] <input.ret> [<input2.ret> ...]
///     --emit=asm|placed|verilog|behavioral   artifact to print (verilog)
///     --device=xczu3eg|small|tiny            placement target (xczu3eg)
///     -O                                     run dce/fold/vectorize first
///     --no-cascade                           skip the cascade rewrite
///     --no-shrink                            skip placement shrinking
///     --stats                                per-stage report on stderr
///     --stats-json=<file|->                  unified stats document
///     --trace=<file|->                       Chrome/Perfetto trace of the run
///     --dump-after-all=<dir>                 write every stage snapshot + manifest
///     --dump-after=<stage>                   print one stage's program to stderr
///                                            (parse, opt, isel, cascade, place,
///                                            codegen)
///     --remarks=<file|->                     human-readable optimization remarks
///     --remarks-json=<file|->                remarks as JSONL (reticle-remarks-v1)
///     --floorplan=<file|->                   placement floorplan; SVG by default,
///                                            ASCII for "-" or a .txt path
///     --floorplan-timeline=<file|->          shrink-probe timeline as SVG
///                                            small multiples
///     --disable-pass=<name>                  skip an optional pass (opt,
///                                            cascade, timing); repeatable
///     --print-before=<name>                  print the program to stderr just
///                                            before the named pass runs
///     --dump-target                          print the UltraScale TDL
///     --version                              print the version and exit
///     -o <file>                              write output to a file
///
/// With more than one input the driver switches to batch mode and
/// compiles every program concurrently, one CompileSession per input:
///     --jobs=N                               worker threads (default: cores)
///     --out-dir=<dir>                        per-input artifacts land here (.)
/// Each input <stem>.ret produces <out-dir>/<stem>.v (or .rasm), plus —
/// when the corresponding flag is given — <stem>.stats.json,
/// <stem>.remarks.txt, <stem>.remarks.jsonl, <stem>.trace.json, and a
/// <stem>/ snapshot directory under the --dump-after-all directory. The
/// --stats-json path then receives the merged "reticle-batch-v1" summary
/// (the per-input file paths of --remarks/--remarks-json/--trace are
/// ignored; presence of the flag enables the per-input artifact).
/// Single-input flags (-o, --dump-after, --floorplan,
/// --floorplan-timeline, --print-before, --emit=behavioral) are rejected
/// in batch mode.
///
/// Remarks and traces are flushed even when a compile fails: a failed
/// placement's `sat:core` remarks are precisely the output that explains
/// the failure.
///
/// Exit codes: 0 success, 1 an input failed to parse or compile, 2 the
/// invocation itself was wrong (unknown flag or value, missing input,
/// unreadable input file, unwritable output file).
///
//===----------------------------------------------------------------------===//

#include "core/Batch.h"
#include "core/Compiler.h"
#include "core/Pipeline.h"
#include "core/Session.h"
#include "core/Stats.h"
#include "ir/Parser.h"
#include "obs/Remarks.h"
#include "obs/Report.h"
#include "obs/Snapshots.h"
#include "obs/Telemetry.h"
#include "opt/Transforms.h"
#include "place/Floorplan.h"
#include "synth/Synth.h"
#include "tdl/Ultrascale.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#ifndef RETICLE_VERSION
#define RETICLE_VERSION "0.0.0-dev"
#endif

using namespace reticle;

namespace {

constexpr const char *EmitChoices = "asm, placed, verilog, behavioral";
constexpr const char *DeviceChoices = "xczu3eg, small, tiny";
constexpr const char *StageChoices =
    "parse, opt, isel, cascade, place, codegen";
constexpr const char *PassChoices =
    "parse, opt, isel, cascade, place, codegen, timing";
constexpr const char *DisableablePasses = "opt, cascade, timing";

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--emit=asm|placed|verilog|behavioral] "
               "[--device=xczu3eg|small|tiny] [-O] [--no-cascade] "
               "[--no-shrink] [--stats] [--stats-json=<file|->] "
               "[--trace=<file|->] [--dump-after-all=<dir>] "
               "[--dump-after=<stage>] [--remarks=<file|->] "
               "[--remarks-json=<file|->] [--floorplan=<file|->] "
               "[--floorplan-timeline=<file|->] [--disable-pass=<name>] "
               "[--print-before=<name>] "
               "[--jobs=N] [--out-dir=<dir>] "
               "[-o <file>] <input.ret> [<input2.ret> ...]\n"
               "       %s --dump-target\n"
               "       %s --version\n",
               Argv0, Argv0, Argv0);
  return 2;
}

/// The invocation itself was wrong: bad flag value, unreadable input,
/// unwritable output. Distinct from a program that fails to compile.
int usageError(const std::string &Message) {
  std::fprintf(stderr, "reticlec: error: %s\n", Message.c_str());
  return 2;
}

/// An input program failed to parse or compile.
int compileError(const std::string &Message) {
  std::fprintf(stderr, "reticlec: error: %s\n", Message.c_str());
  return 1;
}

bool isKnownStage(const std::string &Stage) {
  return Stage == "parse" || Stage == "opt" || Stage == "isel" ||
         Stage == "cascade" || Stage == "place" || Stage == "codegen";
}

bool isKnownPass(const std::string &Name) {
  for (const std::string &P : core::pipelinePassNames())
    if (P == Name)
      return true;
  return false;
}

bool endsWith(const std::string &Text, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return Text.size() >= N &&
         Text.compare(Text.size() - N, N, Suffix) == 0;
}

/// Writes \p Text to \p Path, or to stdout when \p Path is "-".
Status writeTextOutput(const std::string &Path, const std::string &Text) {
  if (Path == "-") {
    std::fputs(Text.c_str(), stdout);
    return Status::success();
  }
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write '" + Path + "'");
  Out << Text;
  return Status::success();
}

/// Everything parsed from the command line.
struct DriverArgs {
  std::string Emit = "verilog";
  std::vector<std::string> Inputs;
  std::string OutputPath;
  std::string StatsJsonPath;
  std::string TracePath;
  std::string DumpDir;
  std::string DumpStage;
  std::string RemarksPath;
  std::string RemarksJsonPath;
  std::string FloorplanPath;
  std::string FloorplanTimelinePath;
  std::string OutDir = ".";
  unsigned Jobs = 0;
  bool Stats = false;
  core::CompileOptions Options;
};

/// The compile error message for a failed pipeline run: parse failures
/// carry the input path, later stages speak for themselves (matching the
/// historical driver output).
std::string pipelineErrorMessage(const core::CompileSession &Session,
                                 const std::string &InputPath,
                                 const std::string &Error) {
  for (const core::CompileSession::Diagnostic &D : Session.diagnostics())
    if (D.Stage == "parse" && D.Message == Error)
      return InputPath + ": " + Error;
  return Error;
}

std::string primaryArtifactText(const core::CompileResult &R,
                                const std::string &Emit) {
  if (Emit == "asm")
    return R.Asm.str();
  if (Emit == "placed")
    return R.Placed.str();
  return R.Verilog.str();
}

/// Compiles one input inside its own session. This is the whole
/// single-input driver minus argument parsing.
int runSingle(const DriverArgs &Args) {
  const std::string &InputPath = Args.Inputs.front();
  std::ifstream In(InputPath);
  if (!In)
    return usageError("cannot open '" + InputPath + "'");
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  if (Args.Emit == "behavioral") {
    // The behavioral translation bypasses the Figure-7 pipeline: parse
    // and optimize by hand, then emit.
    Result<ir::Function> Fn = ir::parseFunction(Buffer.str());
    if (!Fn)
      return compileError(InputPath + ": " + Fn.error());
    if (Args.Options.Optimize) {
      unsigned Folded = opt::constantFold(Fn.value());
      unsigned Dead = opt::deadCodeElim(Fn.value());
      unsigned Vectors = opt::vectorize(Fn.value());
      if (Args.Stats)
        std::fprintf(stderr,
                     "opt: folded %u, removed %u dead, formed %u vector "
                     "op(s)\n",
                     Folded, Dead, Vectors);
    }
    std::string Output =
        synth::emitBehavioral(Fn.value(), synth::Mode::Hint).str();
    if (Args.OutputPath.empty()) {
      std::fputs(Output.c_str(), stdout);
      return 0;
    }
    if (Status S = writeTextOutput(Args.OutputPath, Output); !S)
      return usageError(S.error());
    return 0;
  }

  core::CompileSession Session;
  if (!Args.TracePath.empty())
    Session.telemetry().enableTracing();
  if (!Args.RemarksPath.empty() || !Args.RemarksJsonPath.empty())
    Session.remarks().enable();
  bool WantSnapshots = !Args.DumpDir.empty() || !Args.DumpStage.empty();
  if (WantSnapshots)
    Session.captureSnapshots();

  Result<core::CompileResult> R =
      core::compileSource(Buffer.str(), InputPath, Args.Options, Session);

  // Remarks and traces flush whether or not the compile succeeded: when a
  // placement is infeasible, the sat:core remarks naming the binding
  // constraints are the whole point of asking for remarks.
  auto FlushDiagnostics = [&]() -> Status {
    if (!Args.RemarksPath.empty()) {
      if (Args.RemarksPath == "-") {
        std::fputs(Session.remarks().text().c_str(), stdout);
      } else if (Status S = Session.remarks().writeText(Args.RemarksPath);
                 !S) {
        return S;
      }
    }
    if (!Args.RemarksJsonPath.empty()) {
      if (Args.RemarksJsonPath == "-") {
        std::fputs(Session.remarks().jsonl(InputPath).c_str(), stdout);
      } else if (Status S = Session.remarks().writeJsonl(
                     Args.RemarksJsonPath, InputPath);
                 !S) {
        return S;
      }
    }
    if (!Args.TracePath.empty()) {
      if (Args.TracePath == "-") {
        std::fputs((Session.telemetry().traceJson() + "\n").c_str(), stdout);
      } else if (Status S = Session.telemetry().writeTrace(Args.TracePath);
                 !S) {
        return S;
      }
    }
    return Status::success();
  };

  if (!R) {
    if (Status S = FlushDiagnostics(); !S)
      std::fprintf(stderr, "reticlec: error: %s\n", S.error().c_str());
    return compileError(pipelineErrorMessage(Session, InputPath, R.error()));
  }

  if (Args.Options.Optimize && Args.Stats)
    std::fprintf(stderr,
                 "opt: folded %u, removed %u dead, formed %u vector "
                 "op(s)\n",
                 R.value().Opt.Folded, R.value().Opt.Dead,
                 R.value().Opt.Vectorized);

  std::string Output = primaryArtifactText(R.value(), Args.Emit);

  obs::Json Doc = core::statsJson(R.value(), InputPath, Session.context());
  if (Args.Stats)
    obs::printTable(Doc, stderr);
  if (!Args.StatsJsonPath.empty()) {
    if (Args.StatsJsonPath == "-") {
      std::fputs((Doc.str(2) + "\n").c_str(), stdout);
    } else if (Status S = obs::writeJsonFile(Doc, Args.StatsJsonPath); !S) {
      return usageError(S.error());
    }
  }

  if (!Args.DumpDir.empty())
    if (Status S =
            obs::writeSnapshots(Session.snapshots(), Args.DumpDir, InputPath);
        !S)
      return usageError(S.error());
  if (!Args.DumpStage.empty()) {
    const obs::StageSnapshot *Snap =
        Session.snapshots().find(Args.DumpStage);
    if (!Snap)
      return compileError("no snapshot recorded for stage '" +
                          Args.DumpStage + "'");
    std::fprintf(stderr, "; after %s\n", Snap->Stage.c_str());
    std::fputs(Snap->Text.c_str(), stderr);
  }

  if (!Args.FloorplanPath.empty()) {
    bool Ascii =
        Args.FloorplanPath == "-" || endsWith(Args.FloorplanPath, ".txt");
    std::string Plan =
        Ascii ? place::floorplanAscii(R.value().Placed, Args.Options.Dev)
              : place::floorplanSvg(R.value().Placed, Args.Options.Dev);
    if (Status S = writeTextOutput(Args.FloorplanPath, Plan); !S)
      return usageError(S.error());
  }
  if (!Args.FloorplanTimelinePath.empty()) {
    std::string Plan = place::floorplanTimelineSvg(
        R.value().Placed, Args.Options.Dev, R.value().PlaceStats);
    if (Status S = writeTextOutput(Args.FloorplanTimelinePath, Plan); !S)
      return usageError(S.error());
  }

  if (Status S = FlushDiagnostics(); !S)
    return usageError(S.error());

  if (Args.OutputPath.empty()) {
    std::fputs(Output.c_str(), stdout);
    return 0;
  }
  std::ofstream Out(Args.OutputPath);
  if (!Out)
    return usageError("cannot write '" + Args.OutputPath + "'");
  Out << Output;
  return 0;
}

/// Compiles every input concurrently and writes per-input artifacts plus
/// the merged batch summary.
int runBatch(const DriverArgs &Args) {
  for (const auto &[Flag, Value] :
       {std::pair<const char *, const std::string *>{"-o", &Args.OutputPath},
        {"--dump-after", &Args.DumpStage},
        {"--floorplan", &Args.FloorplanPath},
        {"--floorplan-timeline", &Args.FloorplanTimelinePath},
        {"--print-before", &Args.Options.PrintBefore}})
    if (!Value->empty())
      return usageError(std::string(Flag) +
                        " applies to a single input; with several inputs "
                        "use --out-dir");
  if (Args.Emit == "behavioral")
    return usageError("--emit=behavioral applies to a single input");

  // Read every input up front, and derive a unique artifact stem per
  // input from its file name.
  std::vector<core::BatchInput> Inputs;
  std::vector<std::string> Stems;
  std::set<std::string> SeenStems;
  for (const std::string &Path : Args.Inputs) {
    std::ifstream In(Path);
    if (!In)
      return usageError("cannot open '" + Path + "'");
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Inputs.push_back({Path, Buffer.str()});
    std::string Stem = std::filesystem::path(Path).stem().string();
    if (Stem.empty())
      Stem = "input" + std::to_string(Stems.size());
    if (!SeenStems.insert(Stem).second)
      return usageError("inputs '" + Path +
                        "' and an earlier input share the artifact stem '" +
                        Stem + "'; rename one");
    Stems.push_back(Stem);
  }

  std::error_code Ec;
  std::filesystem::create_directories(Args.OutDir, Ec);
  if (Ec)
    return usageError("cannot create '" + Args.OutDir +
                      "': " + Ec.message());

  core::BatchOptions Batch;
  Batch.Options = Args.Options;
  Batch.Jobs = Args.Jobs;
  Batch.CaptureSnapshots = !Args.DumpDir.empty();
  Batch.EnableRemarks =
      !Args.RemarksPath.empty() || !Args.RemarksJsonPath.empty();
  Batch.EnableTracing = !Args.TracePath.empty();
  unsigned Jobs = core::batchJobCount(Batch, Inputs.size());

  std::vector<core::BatchItem> Items = core::compileBatch(Inputs, Batch);

  const char *Ext = Args.Emit == "verilog" ? ".v" : ".rasm";
  int Exit = 0;
  for (size_t I = 0; I < Items.size(); ++I) {
    const core::BatchItem &Item = Items[I];
    std::filesystem::path Base =
        std::filesystem::path(Args.OutDir) / Stems[I];
    if (!Item.ok()) {
      std::string Error =
          Item.Outcome ? Item.Outcome->error() : std::string("not compiled");
      compileError(pipelineErrorMessage(*Item.Session, Item.Name, Error));
      // A failed item still flushes its remarks and trace — the sat:core
      // remarks of an infeasible placement land there.
      if (!Args.RemarksPath.empty())
        if (Status S = Item.Session->remarks().writeText(Base.string() +
                                                         ".remarks.txt");
            !S)
          return usageError(S.error());
      if (!Args.RemarksJsonPath.empty())
        if (Status S = Item.Session->remarks().writeJsonl(
                Base.string() + ".remarks.jsonl", Item.Name);
            !S)
          return usageError(S.error());
      if (!Args.TracePath.empty())
        if (Status S = Item.Session->telemetry().writeTrace(
                Base.string() + ".trace.json");
            !S)
          return usageError(S.error());
      Exit = 1;
      continue;
    }
    const core::CompileResult &R = Item.Outcome->value();
    if (Status S = writeTextOutput(Base.string() + Ext,
                                   primaryArtifactText(R, Args.Emit));
        !S)
      return usageError(S.error());
    if (!Args.StatsJsonPath.empty()) {
      obs::Json Doc =
          core::statsJson(R, Item.Name, Item.Session->context());
      if (Status S = obs::writeJsonFile(Doc, Base.string() + ".stats.json");
          !S)
        return usageError(S.error());
    }
    if (!Args.RemarksPath.empty())
      if (Status S =
              Item.Session->remarks().writeText(Base.string() +
                                                ".remarks.txt");
          !S)
        return usageError(S.error());
    if (!Args.RemarksJsonPath.empty())
      if (Status S = Item.Session->remarks().writeJsonl(
              Base.string() + ".remarks.jsonl", Item.Name);
          !S)
        return usageError(S.error());
    if (!Args.TracePath.empty())
      if (Status S = Item.Session->telemetry().writeTrace(Base.string() +
                                                          ".trace.json");
          !S)
        return usageError(S.error());
    if (!Args.DumpDir.empty()) {
      std::filesystem::path StageDir =
          std::filesystem::path(Args.DumpDir) / Stems[I];
      if (Status S = obs::writeSnapshots(Item.Session->snapshots(),
                                         StageDir.string(), Item.Name);
          !S)
        return usageError(S.error());
    }
    if (Args.Stats)
      std::fprintf(stderr, "%s: ok (%.1f ms, %u LUT, %u DSP)\n",
                   Item.Name.c_str(), R.Times.TotalMs, R.Util.Luts,
                   R.Util.Dsps);
  }

  if (!Args.StatsJsonPath.empty()) {
    obs::Json Summary = core::batchStatsJson(Items, Jobs);
    if (Args.StatsJsonPath == "-") {
      std::fputs((Summary.str(2) + "\n").c_str(), stdout);
    } else if (Status S = obs::writeJsonFile(Summary, Args.StatsJsonPath);
               !S) {
      return usageError(S.error());
    }
  }
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverArgs Args;
  std::string DeviceName = "xczu3eg";

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--dump-target") {
      std::fputs(tdl::ultrascaleText().c_str(), stdout);
      return 0;
    }
    if (Arg == "--version") {
      std::printf("reticlec %s\n", RETICLE_VERSION);
      return 0;
    }
    if (Arg.rfind("--emit=", 0) == 0) {
      Args.Emit = Arg.substr(7);
    } else if (Arg.rfind("--device=", 0) == 0) {
      DeviceName = Arg.substr(9);
    } else if (Arg.rfind("--stats-json=", 0) == 0) {
      Args.StatsJsonPath = Arg.substr(13);
      if (Args.StatsJsonPath.empty())
        return usageError("--stats-json= requires a file path or '-'");
    } else if (Arg.rfind("--trace=", 0) == 0) {
      Args.TracePath = Arg.substr(8);
      if (Args.TracePath.empty())
        return usageError("--trace= requires a file path or '-'");
    } else if (Arg.rfind("--dump-after-all=", 0) == 0) {
      Args.DumpDir = Arg.substr(17);
      if (Args.DumpDir.empty())
        return usageError("--dump-after-all= requires a directory");
    } else if (Arg.rfind("--dump-after=", 0) == 0) {
      Args.DumpStage = Arg.substr(13);
      if (!isKnownStage(Args.DumpStage))
        return usageError("unknown stage '" + Args.DumpStage +
                          "' (valid: " + std::string(StageChoices) + ")");
    } else if (Arg.rfind("--remarks=", 0) == 0) {
      Args.RemarksPath = Arg.substr(10);
      if (Args.RemarksPath.empty())
        return usageError("--remarks= requires a file path or '-'");
    } else if (Arg.rfind("--remarks-json=", 0) == 0) {
      Args.RemarksJsonPath = Arg.substr(15);
      if (Args.RemarksJsonPath.empty())
        return usageError("--remarks-json= requires a file path or '-'");
    } else if (Arg.rfind("--floorplan=", 0) == 0) {
      Args.FloorplanPath = Arg.substr(12);
      if (Args.FloorplanPath.empty())
        return usageError("--floorplan= requires a file path or '-'");
    } else if (Arg.rfind("--floorplan-timeline=", 0) == 0) {
      Args.FloorplanTimelinePath = Arg.substr(21);
      if (Args.FloorplanTimelinePath.empty())
        return usageError("--floorplan-timeline= requires a file path or "
                          "'-'");
    } else if (Arg.rfind("--disable-pass=", 0) == 0) {
      std::string Name = Arg.substr(15);
      if (!isKnownPass(Name))
        return usageError("unknown pass '" + Name +
                          "' (valid: " + std::string(PassChoices) + ")");
      if (!core::isPassDisableable(Name))
        return usageError("pass '" + Name +
                          "' cannot be disabled (disableable: " +
                          std::string(DisableablePasses) + ")");
      if (!Args.Options.isPassDisabled(Name))
        Args.Options.DisabledPasses.push_back(Name);
    } else if (Arg.rfind("--print-before=", 0) == 0) {
      std::string Name = Arg.substr(15);
      if (!isKnownPass(Name))
        return usageError("unknown pass '" + Name +
                          "' (valid: " + std::string(PassChoices) + ")");
      Args.Options.PrintBefore = Name;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      std::string Value = Arg.substr(7);
      char *End = nullptr;
      unsigned long Jobs = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || *End != '\0' || Jobs == 0 || Jobs > 1024)
        return usageError("--jobs= requires a positive thread count");
      Args.Jobs = static_cast<unsigned>(Jobs);
    } else if (Arg.rfind("--out-dir=", 0) == 0) {
      Args.OutDir = Arg.substr(10);
      if (Args.OutDir.empty())
        return usageError("--out-dir= requires a directory");
    } else if (Arg == "-O") {
      Args.Options.Optimize = true;
    } else if (Arg == "--no-cascade") {
      Args.Options.Cascade = false;
    } else if (Arg == "--no-shrink") {
      Args.Options.Shrink = false;
    } else if (Arg == "--stats") {
      Args.Stats = true;
    } else if (Arg == "-o") {
      if (++I >= Argc)
        return usage(Argv[0]);
      Args.OutputPath = Argv[I];
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "reticlec: unknown option '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else {
      Args.Inputs.push_back(Arg);
    }
  }
  if (Args.Inputs.empty())
    return usage(Argv[0]);

  if (Args.Emit != "asm" && Args.Emit != "placed" &&
      Args.Emit != "verilog" && Args.Emit != "behavioral")
    return usageError("unknown --emit kind '" + Args.Emit +
                      "' (valid: " + EmitChoices + ")");

  if (DeviceName == "xczu3eg")
    Args.Options.Dev = device::Device::xczu3eg();
  else if (DeviceName == "small")
    Args.Options.Dev = device::Device::small();
  else if (DeviceName == "tiny")
    Args.Options.Dev = device::Device::tiny();
  else
    return usageError("unknown --device '" + DeviceName +
                      "' (valid: " + DeviceChoices + ")");

  if (Args.Emit == "behavioral") {
    // Everything below observes the Figure-7 pipeline, which the
    // behavioral translation bypasses entirely.
    const std::pair<const char *, const std::string *> PipelineOnly[] = {
        {"--stats-json", &Args.StatsJsonPath},
        {"--dump-after-all", &Args.DumpDir},
        {"--dump-after", &Args.DumpStage},
        {"--remarks", &Args.RemarksPath},
        {"--remarks-json", &Args.RemarksJsonPath},
        {"--floorplan", &Args.FloorplanPath},
        {"--floorplan-timeline", &Args.FloorplanTimelinePath},
        {"--print-before", &Args.Options.PrintBefore},
    };
    for (const auto &[Flag, Value] : PipelineOnly)
      if (!Value->empty())
        return usageError(std::string(Flag) +
                          " requires a pipeline emit kind "
                          "(asm, placed, verilog)");
    if (!Args.Options.DisabledPasses.empty())
      return usageError("--disable-pass requires a pipeline emit kind "
                        "(asm, placed, verilog)");
  }

  return Args.Inputs.size() > 1 ? runBatch(Args) : runSingle(Args);
}
