//===- tools/json_check.cpp - JSON document validator --------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Validates the JSON documents the compiler emits (trace files, stats
/// reports, benchmark series) so CTest can gate on their shape, not just
/// on reticlec's exit code.
///
/// Usage:
///   json_check [checks] <file.json>
///     --require=<a.b.c>     dotted path must exist
///     --nonempty=<a.b.c>    array or object at path must have elements
///     --has-event=<name>    some traceEvents entry has "name": <name>
///
/// The bare invocation only checks that the file parses as strict JSON.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace reticle;
using obs::Json;

namespace {

int fail(const std::string &Path, const std::string &Message) {
  std::fprintf(stderr, "json_check: %s: %s\n", Path.c_str(),
               Message.c_str());
  return 1;
}

/// Walks a dotted path ("place.sat.decisions") through nested objects.
const Json *lookup(const Json &Root, const std::string &DottedPath) {
  const Json *Node = &Root;
  size_t Pos = 0;
  while (Pos <= DottedPath.size()) {
    size_t Dot = DottedPath.find('.', Pos);
    std::string Key = DottedPath.substr(
        Pos, Dot == std::string::npos ? std::string::npos : Dot - Pos);
    if (!Node->isObject())
      return nullptr;
    Node = Node->find(Key);
    if (!Node)
      return nullptr;
    if (Dot == std::string::npos)
      return Node;
    Pos = Dot + 1;
  }
  return Node;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string FilePath;
  std::vector<std::string> Required, NonEmpty, Events;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--require=", 0) == 0)
      Required.push_back(Arg.substr(10));
    else if (Arg.rfind("--nonempty=", 0) == 0)
      NonEmpty.push_back(Arg.substr(11));
    else if (Arg.rfind("--has-event=", 0) == 0)
      Events.push_back(Arg.substr(12));
    else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--require=<path>] [--nonempty=<path>] "
                   "[--has-event=<name>] <file.json>\n",
                   Argv[0]);
      return 2;
    } else
      FilePath = Arg;
  }
  if (FilePath.empty()) {
    std::fprintf(stderr, "json_check: no input file\n");
    return 2;
  }

  std::ifstream In(FilePath);
  if (!In)
    return fail(FilePath, "cannot open");
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Result<Json> Doc = Json::parse(Buffer.str());
  if (!Doc)
    return fail(FilePath, "malformed JSON: " + Doc.error());

  for (const std::string &Path : Required)
    if (!lookup(Doc.value(), Path))
      return fail(FilePath, "missing required key '" + Path + "'");

  for (const std::string &Path : NonEmpty) {
    const Json *Node = lookup(Doc.value(), Path);
    if (!Node)
      return fail(FilePath, "missing required key '" + Path + "'");
    if (Node->size() == 0)
      return fail(FilePath, "'" + Path + "' is empty");
  }

  if (!Events.empty()) {
    const Json *Trace = Doc.value().find("traceEvents");
    if (!Trace || !Trace->isArray())
      return fail(FilePath, "no traceEvents array");
    for (const std::string &Name : Events) {
      bool Found = false;
      for (const Json &Event : Trace->items()) {
        const Json *N = Event.isObject() ? Event.find("name") : nullptr;
        if (N && N->isString() && N->asString() == Name) {
          Found = true;
          break;
        }
      }
      if (!Found)
        return fail(FilePath, "no trace event named '" + Name + "'");
    }
  }
  return 0;
}
