//===- tools/json_check.cpp - JSON document validator --------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Validates the JSON documents the compiler emits (trace files, stats
/// reports, remark streams, benchmark series) so CTest can gate on their
/// shape, not just on reticlec's exit code.
///
/// Usage:
///   json_check [checks] <file.json>
///     --jsonl               treat the file as JSON Lines: every non-empty
///                           line must parse; path checks pass when ANY
///                           line satisfies them
///     --require=<a.b.c>     dotted path must exist
///     --nonempty=<a.b.c>    array or object at path must have elements
///     --has-event=<name>    some traceEvents entry has "name": <name>
///     --has-remark=<stage>  (jsonl) some record has "stage": <stage>
///     --batch-summary       the document is a well-formed
///                           "reticle-batch-v1" batch summary: the counts
///                           add up, every program entry has a status, ok
///                           entries embed a reticle-stats-v1 document,
///                           error entries carry a message
///
/// The bare invocation only checks that the file parses as strict JSON.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace reticle;
using obs::Json;

namespace {

int fail(const std::string &Path, const std::string &Message) {
  std::fprintf(stderr, "json_check: %s: %s\n", Path.c_str(),
               Message.c_str());
  return 1;
}

/// Walks a dotted path ("place.sat.decisions") through nested objects.
const Json *lookup(const Json &Root, const std::string &DottedPath) {
  const Json *Node = &Root;
  size_t Pos = 0;
  while (Pos <= DottedPath.size()) {
    size_t Dot = DottedPath.find('.', Pos);
    std::string Key = DottedPath.substr(
        Pos, Dot == std::string::npos ? std::string::npos : Dot - Pos);
    if (!Node->isObject())
      return nullptr;
    Node = Node->find(Key);
    if (!Node)
      return nullptr;
    if (Dot == std::string::npos)
      return Node;
    Pos = Dot + 1;
  }
  return Node;
}

bool anyLookup(const std::vector<Json> &Docs, const std::string &Path) {
  for (const Json &Doc : Docs)
    if (lookup(Doc, Path))
      return true;
  return false;
}

/// Structural validation of a "reticle-batch-v1" summary (see
/// core/Batch.h). Returns an empty string on success, else what is wrong.
std::string checkBatchSummary(const Json &Doc) {
  const Json *Schema = Doc.isObject() ? Doc.find("schema") : nullptr;
  if (!Schema || !Schema->isString() ||
      Schema->asString() != "reticle-batch-v1")
    return "schema is not \"reticle-batch-v1\"";

  auto Count = [&](const char *Key, int64_t &Out) -> bool {
    const Json *N = Doc.find(Key);
    if (!N || !N->isNumber())
      return false;
    Out = N->asInt();
    return true;
  };
  int64_t Inputs = 0, Succeeded = 0, Failed = 0, Jobs = 0;
  if (!Count("inputs", Inputs))
    return "missing numeric 'inputs'";
  if (!Count("succeeded", Succeeded))
    return "missing numeric 'succeeded'";
  if (!Count("failed", Failed))
    return "missing numeric 'failed'";
  if (!Count("jobs", Jobs) || Jobs < 1)
    return "missing positive 'jobs'";
  if (Succeeded + Failed != Inputs)
    return "succeeded + failed != inputs";

  const Json *Programs = Doc.find("programs");
  if (!Programs || !Programs->isArray())
    return "missing 'programs' array";
  if (static_cast<int64_t>(Programs->size()) != Inputs)
    return "'programs' length disagrees with 'inputs'";
  for (const Json &Entry : Programs->items()) {
    const Json *Name = Entry.isObject() ? Entry.find("program") : nullptr;
    if (!Name || !Name->isString())
      return "a program entry lacks 'program'";
    const Json *St = Entry.find("status");
    if (!St || !St->isString())
      return "'" + Name->asString() + "' lacks 'status'";
    if (St->asString() == "ok") {
      const Json *Stats = lookup(Entry, "stats.schema");
      if (!Stats || !Stats->isString() ||
          Stats->asString() != "reticle-stats-v1")
        return "'" + Name->asString() +
               "' is ok but embeds no reticle-stats-v1 document";
    } else if (St->asString() == "error") {
      const Json *Error = Entry.find("error");
      if (!Error || !Error->isString() || Error->asString().empty())
        return "'" + Name->asString() + "' failed without an error message";
    } else {
      return "'" + Name->asString() + "' has unknown status '" +
             St->asString() + "'";
    }
  }

  const Json *TotalMs = lookup(Doc, "totals.total_ms");
  if (!TotalMs || !TotalMs->isNumber())
    return "missing numeric 'totals.total_ms'";
  return {};
}

} // namespace

int main(int Argc, char **Argv) {
  std::string FilePath;
  std::vector<std::string> Required, NonEmpty, Events, Remarks;
  bool Jsonl = false;
  bool BatchSummary = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--jsonl")
      Jsonl = true;
    else if (Arg == "--batch-summary")
      BatchSummary = true;
    else if (Arg.rfind("--require=", 0) == 0)
      Required.push_back(Arg.substr(10));
    else if (Arg.rfind("--nonempty=", 0) == 0)
      NonEmpty.push_back(Arg.substr(11));
    else if (Arg.rfind("--has-event=", 0) == 0)
      Events.push_back(Arg.substr(12));
    else if (Arg.rfind("--has-remark=", 0) == 0)
      Remarks.push_back(Arg.substr(13));
    else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--jsonl] [--require=<path>] "
                   "[--nonempty=<path>] [--has-event=<name>] "
                   "[--has-remark=<stage>] [--batch-summary] "
                   "<file.json>\n",
                   Argv[0]);
      return 2;
    } else
      FilePath = Arg;
  }
  if (FilePath.empty()) {
    std::fprintf(stderr, "json_check: no input file\n");
    return 2;
  }

  std::ifstream In(FilePath);
  if (!In)
    return fail(FilePath, "cannot open");
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  // Parse: either one document, or one document per non-empty line.
  std::vector<Json> Docs;
  if (Jsonl) {
    std::istringstream Lines(Buffer.str());
    std::string Line;
    size_t LineNo = 0;
    while (std::getline(Lines, Line)) {
      ++LineNo;
      if (Line.find_first_not_of(" \t\r") == std::string::npos)
        continue;
      Result<Json> Doc = Json::parse(Line);
      if (!Doc)
        return fail(FilePath, "line " + std::to_string(LineNo) +
                                  ": malformed JSON: " + Doc.error());
      Docs.push_back(Doc.take());
    }
  } else {
    Result<Json> Doc = Json::parse(Buffer.str());
    if (!Doc)
      return fail(FilePath, "malformed JSON: " + Doc.error());
    Docs.push_back(Doc.take());
  }

  if (BatchSummary)
    if (std::string Problem = checkBatchSummary(Docs.front());
        !Problem.empty())
      return fail(FilePath, "bad batch summary: " + Problem);

  for (const std::string &Path : Required)
    if (!anyLookup(Docs, Path))
      return fail(FilePath, "missing required key '" + Path + "'");

  for (const std::string &Path : NonEmpty) {
    bool Found = false, NonEmptyHit = false;
    for (const Json &Doc : Docs) {
      const Json *Node = lookup(Doc, Path);
      if (!Node)
        continue;
      Found = true;
      if (Node->size() != 0) {
        NonEmptyHit = true;
        break;
      }
    }
    if (!Found)
      return fail(FilePath, "missing required key '" + Path + "'");
    if (!NonEmptyHit)
      return fail(FilePath, "'" + Path + "' is empty");
  }

  if (!Events.empty()) {
    const Json *Trace = Docs.front().find("traceEvents");
    if (!Trace || !Trace->isArray())
      return fail(FilePath, "no traceEvents array");
    for (const std::string &Name : Events) {
      bool Found = false;
      for (const Json &Event : Trace->items()) {
        const Json *N = Event.isObject() ? Event.find("name") : nullptr;
        if (N && N->isString() && N->asString() == Name) {
          Found = true;
          break;
        }
      }
      if (!Found)
        return fail(FilePath, "no trace event named '" + Name + "'");
    }
  }

  for (const std::string &Stage : Remarks) {
    bool Found = false;
    for (const Json &Doc : Docs) {
      const Json *S = Doc.isObject() ? Doc.find("stage") : nullptr;
      if (S && S->isString() && S->asString() == Stage) {
        Found = true;
        break;
      }
    }
    if (!Found)
      return fail(FilePath, "no remark from stage '" + Stage + "'");
  }
  return 0;
}
