//===- tools/json_check.cpp - JSON document validator --------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Validates the JSON documents the compiler emits (trace files, stats
/// reports, remark streams, benchmark series) so CTest can gate on their
/// shape, not just on reticlec's exit code.
///
/// Usage:
///   json_check [checks] <file.json>
///     --jsonl               treat the file as JSON Lines: every non-empty
///                           line must parse; path checks pass when ANY
///                           line satisfies them
///     --require=<a.b.c>     dotted path must exist
///     --nonempty=<a.b.c>    array or object at path must have elements
///     --has-event=<name>    some traceEvents entry has "name": <name>
///     --has-remark=<stage>  (jsonl) some record has "stage": <stage>
///     --batch-summary       the document is a well-formed
///                           "reticle-batch-v1" batch summary: the counts
///                           add up, every program entry has a status, ok
///                           entries embed a reticle-stats-v1 document,
///                           error entries carry a message
///
/// The bare invocation only checks that the file parses as strict JSON.
///
/// A second mode compares two remark streams:
///   json_check remark_diff [--json] <a.jsonl> <b.jsonl>
/// Both files are "reticle-remarks-v1" JSONL streams. Records are joined
/// on {stage, kind, instr} (pairing positionally within a group) and
/// their message and args compared. Differences print as +/-/~ lines, or
/// as one "reticle-remark-diff-v1" JSON document with --json. Exit 0 when
/// the streams agree, 1 when they differ, 2 when an input is unusable —
/// the same contract as diff(1), so CI can gate on remark drift.
///
/// A third mode compares two waveform streams:
///   json_check wave_diff [--json] [--all-signals] <a.jsonl> <b.jsonl>
/// Both files are "reticle-wave-v1" JSONL streams (reticlec --wave-json).
/// Records are joined on {cycle, signal}. By default only signals that
/// both headers mark as ports (kind "input"/"output") are compared —
/// internal signals legitimately differ between engines; --all-signals
/// compares every shared signal. The first divergence is reported as
/// (cycle, signal, expected, actual), with totals; --json emits one
/// "reticle-wave-diff-v1" document. Exit 0 when the waves agree, 1 when
/// they diverge (including cycle-count mismatch), 2 when an input is
/// unusable or no signal is comparable.
///
/// Two more modes operate on "reticle-coverage-v1" documents
/// (reticlec --coverage):
///   json_check coverage_merge <a.json> [<b.json> ...]
/// unions the inputs' coverage spaces (bin counts summed) and writes the
/// merged document — a superset of every input — to stdout. Exit 0, or 2
/// when an input is unusable.
///   json_check coverage_diff <golden.json> <new.json>
/// is the coverage ratchet: any bin hit in the golden doc but missing (or
/// zero) in the new doc is LOST and fails the diff; newly hit bins are
/// reported as gained but pass. Exit 0 when nothing was lost, 1 on a
/// coverage regression, 2 when an input is unusable.
///
/// A further mode compares two sim-VM execution profiles:
///   json_check profile_diff [--json] <a.json> <b.json>
/// Both files are "reticle-profile-v1" documents (reticlec --profile-sim).
/// Hot-instruction entries are joined on {segment, offset} and their
/// opcode, source attribution, and execution count compared; cycle and
/// total/attributed op counts are compared as scalars. The sampled wall
/// times ("sampling") are machine-dependent and deliberately IGNORED, so
/// two runs of the same program over the same trace must diff clean —
/// that is the hot-set determinism gate. Exit 0 when the profiles agree,
/// 1 when they differ, 2 when an input is unusable — the diff(1)
/// contract, like the other diff modes.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace reticle;
using obs::Json;

namespace {

int fail(const std::string &Path, const std::string &Message) {
  std::fprintf(stderr, "json_check: %s: %s\n", Path.c_str(),
               Message.c_str());
  return 1;
}

/// Walks a dotted path ("place.sat.decisions") through nested objects.
const Json *lookup(const Json &Root, const std::string &DottedPath) {
  const Json *Node = &Root;
  size_t Pos = 0;
  while (Pos <= DottedPath.size()) {
    if (!Node->isObject())
      return nullptr;
    size_t Dot = DottedPath.find('.', Pos);
    std::string Key = DottedPath.substr(
        Pos, Dot == std::string::npos ? std::string::npos : Dot - Pos);
    const Json *Next = Node->find(Key);
    // Keys may themselves contain dots (coverage space names like
    // "ir.op" or "isel.pattern"): when the plain segment misses, extend
    // it through later dots until a member matches.
    while (!Next && Dot != std::string::npos) {
      Dot = DottedPath.find('.', Dot + 1);
      Key = DottedPath.substr(
          Pos, Dot == std::string::npos ? std::string::npos : Dot - Pos);
      Next = Node->find(Key);
    }
    if (!Next)
      return nullptr;
    Node = Next;
    if (Dot == std::string::npos)
      return Node;
    Pos = Dot + 1;
  }
  return Node;
}

bool anyLookup(const std::vector<Json> &Docs, const std::string &Path) {
  for (const Json &Doc : Docs)
    if (lookup(Doc, Path))
      return true;
  return false;
}

/// Structural validation of a "reticle-batch-v1" summary (see
/// core/Batch.h). Returns an empty string on success, else what is wrong.
std::string checkBatchSummary(const Json &Doc) {
  const Json *Schema = Doc.isObject() ? Doc.find("schema") : nullptr;
  if (!Schema || !Schema->isString() ||
      Schema->asString() != "reticle-batch-v1")
    return "schema is not \"reticle-batch-v1\"";

  auto Count = [&](const char *Key, int64_t &Out) -> bool {
    const Json *N = Doc.find(Key);
    if (!N || !N->isNumber())
      return false;
    Out = N->asInt();
    return true;
  };
  int64_t Inputs = 0, Succeeded = 0, Failed = 0, Jobs = 0;
  if (!Count("inputs", Inputs))
    return "missing numeric 'inputs'";
  if (!Count("succeeded", Succeeded))
    return "missing numeric 'succeeded'";
  if (!Count("failed", Failed))
    return "missing numeric 'failed'";
  if (!Count("jobs", Jobs) || Jobs < 1)
    return "missing positive 'jobs'";
  if (Succeeded + Failed != Inputs)
    return "succeeded + failed != inputs";

  const Json *Programs = Doc.find("programs");
  if (!Programs || !Programs->isArray())
    return "missing 'programs' array";
  if (static_cast<int64_t>(Programs->size()) != Inputs)
    return "'programs' length disagrees with 'inputs'";
  for (const Json &Entry : Programs->items()) {
    const Json *Name = Entry.isObject() ? Entry.find("program") : nullptr;
    if (!Name || !Name->isString())
      return "a program entry lacks 'program'";
    const Json *St = Entry.find("status");
    if (!St || !St->isString())
      return "'" + Name->asString() + "' lacks 'status'";
    if (St->asString() == "ok") {
      const Json *Stats = lookup(Entry, "stats.schema");
      if (!Stats || !Stats->isString() ||
          Stats->asString() != "reticle-stats-v1")
        return "'" + Name->asString() +
               "' is ok but embeds no reticle-stats-v1 document";
    } else if (St->asString() == "error") {
      const Json *Error = Entry.find("error");
      if (!Error || !Error->isString() || Error->asString().empty())
        return "'" + Name->asString() + "' failed without an error message";
    } else {
      return "'" + Name->asString() + "' has unknown status '" +
             St->asString() + "'";
    }
  }

  const Json *TotalMs = lookup(Doc, "totals.total_ms");
  if (!TotalMs || !TotalMs->isNumber())
    return "missing numeric 'totals.total_ms'";
  return {};
}

/// One remark record, reduced to its join key and comparison payload.
struct RemarkRecord {
  std::string Stage;
  std::string Kind;
  std::string Instr;
  std::string Payload; ///< message plus compact args — the compared text
};

/// Loads a "reticle-remarks-v1" JSONL stream, skipping the header line
/// (and any other line without a "stage" key). Returns an error message
/// on failure via \p Error.
bool loadRemarks(const std::string &Path, std::vector<RemarkRecord> &Out,
                 std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = Path + ": cannot open";
    return false;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    Result<Json> Doc = Json::parse(Line);
    if (!Doc) {
      Error = Path + ": line " + std::to_string(LineNo) +
              ": malformed JSON: " + Doc.error();
      return false;
    }
    const Json &R = Doc.value();
    const Json *Stage = R.isObject() ? R.find("stage") : nullptr;
    if (!Stage || !Stage->isString())
      continue; // header or foreign line
    RemarkRecord Rec;
    Rec.Stage = Stage->asString();
    if (const Json *Kind = R.find("kind"); Kind && Kind->isString())
      Rec.Kind = Kind->asString();
    if (const Json *Instr = R.find("instr"); Instr && Instr->isString())
      Rec.Instr = Instr->asString();
    if (const Json *Message = R.find("message");
        Message && Message->isString())
      Rec.Payload = Message->asString();
    if (const Json *Args = R.find("args"); Args && Args->size())
      Rec.Payload += " " + Args->str();
    Out.push_back(std::move(Rec));
  }
  return true;
}

std::string remarkKeyLabel(const RemarkRecord &R) {
  std::string Label = R.Stage + ":" + R.Kind;
  if (!R.Instr.empty())
    Label += " @" + R.Instr;
  return Label;
}

/// `json_check remark_diff [--json] a.jsonl b.jsonl`: joins two remark
/// streams on {stage, kind, instr} and reports added/removed/changed
/// records. Exit 0 identical, 1 different, 2 unusable input.
int runRemarkDiff(int Argc, char **Argv) {
  bool AsJson = false;
  std::vector<std::string> Paths;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json")
      AsJson = true;
    else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s remark_diff [--json] <a.jsonl> <b.jsonl>\n",
                   Argv[0]);
      return 2;
    } else
      Paths.push_back(Arg);
  }
  if (Paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: %s remark_diff [--json] <a.jsonl> <b.jsonl>\n",
                 Argv[0]);
    return 2;
  }

  std::vector<RemarkRecord> A, B;
  std::string Error;
  if (!loadRemarks(Paths[0], A, Error) || !loadRemarks(Paths[1], B, Error)) {
    std::fprintf(stderr, "json_check: %s\n", Error.c_str());
    return 2;
  }

  // Group both streams by the join key, preserving first-appearance order
  // so the report reads in pipeline order.
  auto KeyOf = [](const RemarkRecord &R) {
    return R.Stage + '\0' + R.Kind + '\0' + R.Instr;
  };
  std::vector<std::string> KeyOrder;
  std::map<std::string, std::pair<std::vector<const RemarkRecord *>,
                                  std::vector<const RemarkRecord *>>>
      Groups;
  for (const RemarkRecord &R : A) {
    auto [It, Fresh] = Groups.try_emplace(KeyOf(R));
    if (Fresh)
      KeyOrder.push_back(It->first);
    It->second.first.push_back(&R);
  }
  for (const RemarkRecord &R : B) {
    auto [It, Fresh] = Groups.try_emplace(KeyOf(R));
    if (Fresh)
      KeyOrder.push_back(It->first);
    It->second.second.push_back(&R);
  }

  uint64_t Added = 0, Removed = 0, Changed = 0, Unchanged = 0;
  Json Details = Json::array();
  std::string Text;
  auto Report = [&](const char *St, const RemarkRecord &R,
                    const RemarkRecord *Other) {
    const char *Mark = std::string(St) == "added"     ? "+"
                       : std::string(St) == "removed" ? "-"
                                                      : "~";
    Text += std::string(Mark) + " " + remarkKeyLabel(R) + ": " + R.Payload;
    if (Other)
      Text += "\n  -> " + Other->Payload;
    Text += "\n";
    Json Entry = Json::object();
    Entry.set("status", St);
    Entry.set("stage", R.Stage);
    Entry.set("kind", R.Kind);
    if (!R.Instr.empty())
      Entry.set("instr", R.Instr);
    if (std::string(St) != "added")
      Entry.set("a", R.Payload);
    if (std::string(St) == "added")
      Entry.set("b", R.Payload);
    else if (Other)
      Entry.set("b", Other->Payload);
    Details.push(std::move(Entry));
  };

  for (const std::string &Key : KeyOrder) {
    const auto &[InA, InB] = Groups[Key];
    size_t Common = std::min(InA.size(), InB.size());
    for (size_t I = 0; I < Common; ++I) {
      if (InA[I]->Payload == InB[I]->Payload) {
        ++Unchanged;
      } else {
        ++Changed;
        Report("changed", *InA[I], InB[I]);
      }
    }
    for (size_t I = Common; I < InA.size(); ++I) {
      ++Removed;
      Report("removed", *InA[I], nullptr);
    }
    for (size_t I = Common; I < InB.size(); ++I) {
      ++Added;
      Report("added", *InB[I], nullptr);
    }
  }

  if (AsJson) {
    Json Doc = Json::object();
    Doc.set("schema", "reticle-remark-diff-v1");
    Doc.set("a", Paths[0]);
    Doc.set("b", Paths[1]);
    Doc.set("added", Added);
    Doc.set("removed", Removed);
    Doc.set("changed", Changed);
    Doc.set("unchanged", Unchanged);
    Doc.set("details", std::move(Details));
    std::fputs((Doc.str(2) + "\n").c_str(), stdout);
  } else {
    std::fputs(Text.c_str(), stdout);
    std::printf("remark diff: %llu added, %llu removed, %llu changed, "
                "%llu unchanged\n",
                static_cast<unsigned long long>(Added),
                static_cast<unsigned long long>(Removed),
                static_cast<unsigned long long>(Changed),
                static_cast<unsigned long long>(Unchanged));
  }
  return Added + Removed + Changed ? 1 : 0;
}

/// One parsed "reticle-wave-v1" stream, indexed for the cycle/signal join.
struct WaveStream {
  std::vector<std::string> SignalOrder; ///< header order
  std::map<std::string, std::string> Kinds; ///< name -> input/output/internal
  /// Values[signal][cycle] = MSB-first bit string.
  std::map<std::string, std::map<uint64_t, std::string>> Values;
  uint64_t Cycles = 0; ///< footer count, else max record cycle + 1
  bool HasKinds = false;
  bool Aborted = false;
};

/// Loads a "reticle-wave-v1" JSONL stream. Returns false and sets
/// \p Error when the file is missing, malformed, or not a wave stream.
bool loadWave(const std::string &Path, WaveStream &Out, std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = Path + ": cannot open";
    return false;
  }
  std::string Line;
  size_t LineNo = 0;
  bool SawHeader = false;
  uint64_t MaxCycle = 0;
  bool SawRecord = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    Result<Json> Doc = Json::parse(Line);
    if (!Doc) {
      Error = Path + ": line " + std::to_string(LineNo) +
              ": malformed JSON: " + Doc.error();
      return false;
    }
    const Json &R = Doc.value();
    if (!R.isObject()) {
      Error = Path + ": line " + std::to_string(LineNo) + ": not an object";
      return false;
    }
    if (const Json *Schema = R.find("schema")) {
      // Header line: declares the signal inventory.
      if (!Schema->isString() || Schema->asString() != "reticle-wave-v1") {
        Error = Path + ": schema is not \"reticle-wave-v1\"";
        return false;
      }
      SawHeader = true;
      if (const Json *Signals = R.find("signals"); Signals && Signals->isArray())
        for (const Json &Sig : Signals->items()) {
          const Json *Name = Sig.isObject() ? Sig.find("name") : nullptr;
          if (!Name || !Name->isString())
            continue;
          Out.SignalOrder.push_back(Name->asString());
          if (const Json *Kind = Sig.find("kind"); Kind && Kind->isString()) {
            Out.Kinds[Name->asString()] = Kind->asString();
            Out.HasKinds = true;
          }
        }
      continue;
    }
    if (const Json *Sig = R.find("signal")) {
      // Value record.
      const Json *Cycle = R.find("cycle");
      const Json *Value = R.find("value");
      if (!Sig->isString() || !Cycle || !Cycle->isNumber() || !Value ||
          !Value->isString()) {
        Error = Path + ": line " + std::to_string(LineNo) +
                ": bad value record";
        return false;
      }
      uint64_t C = static_cast<uint64_t>(Cycle->asInt());
      Out.Values[Sig->asString()][C] = Value->asString();
      MaxCycle = std::max(MaxCycle, C);
      SawRecord = true;
      continue;
    }
    if (const Json *Cycles = R.find("cycles"); Cycles && Cycles->isNumber()) {
      // Footer line.
      Out.Cycles = static_cast<uint64_t>(Cycles->asInt());
      if (const Json *Ab = R.find("aborted"); Ab && Ab->isBool())
        Out.Aborted = Ab->asBool();
      continue;
    }
    // Foreign line: tolerate, mirroring loadRemarks.
  }
  if (!SawHeader) {
    Error = Path + ": no reticle-wave-v1 header line";
    return false;
  }
  if (Out.Cycles == 0 && SawRecord)
    Out.Cycles = MaxCycle + 1;
  return true;
}

/// `json_check wave_diff [--json] [--all-signals] a.jsonl b.jsonl`: joins
/// two wave streams on {cycle, signal} and reports divergences. Exit 0
/// identical, 1 divergent, 2 unusable input or nothing comparable.
int runWaveDiff(int Argc, char **Argv) {
  bool AsJson = false;
  bool AllSignals = false;
  std::vector<std::string> Paths;
  auto Usage = [&] {
    std::fprintf(stderr,
                 "usage: %s wave_diff [--json] [--all-signals] "
                 "<a.jsonl> <b.jsonl>\n",
                 Argv[0]);
    return 2;
  };
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json")
      AsJson = true;
    else if (Arg == "--all-signals")
      AllSignals = true;
    else if (!Arg.empty() && Arg[0] == '-')
      return Usage();
    else
      Paths.push_back(Arg);
  }
  if (Paths.size() != 2)
    return Usage();

  WaveStream A, B;
  std::string Error;
  if (!loadWave(Paths[0], A, Error) || !loadWave(Paths[1], B, Error)) {
    std::fprintf(stderr, "json_check: %s\n", Error.c_str());
    return 2;
  }

  // Comparable set: signals present in both headers, restricted to ports
  // (kind input/output) unless --all-signals or either header lacks kind
  // annotations. Order follows A's header.
  auto IsPort = [](const WaveStream &W, const std::string &Name) {
    auto It = W.Kinds.find(Name);
    return It != W.Kinds.end() &&
           (It->second == "input" || It->second == "output");
  };
  bool PortsOnly = !AllSignals && A.HasKinds && B.HasKinds;
  std::vector<std::string> Shared;
  for (const std::string &Name : A.SignalOrder) {
    if (std::find(B.SignalOrder.begin(), B.SignalOrder.end(), Name) ==
        B.SignalOrder.end())
      continue;
    if (PortsOnly && !(IsPort(A, Name) && IsPort(B, Name)))
      continue;
    Shared.push_back(Name);
  }
  if (Shared.empty()) {
    std::fprintf(stderr,
                 "json_check: %s vs %s: no comparable signals "
                 "(%zu vs %zu in headers%s)\n",
                 Paths[0].c_str(), Paths[1].c_str(), A.SignalOrder.size(),
                 B.SignalOrder.size(),
                 PortsOnly ? "; ports only, try --all-signals" : "");
    return 2;
  }

  uint64_t Cycles = std::min(A.Cycles, B.Cycles);
  uint64_t Divergences = 0, Compared = 0;
  bool HaveFirst = false;
  uint64_t FirstCycle = 0;
  std::string FirstSignal, FirstA, FirstB;
  Json Details = Json::array();
  for (uint64_t C = 0; C < Cycles; ++C)
    for (const std::string &Name : Shared) {
      auto ValueAt = [C](const WaveStream &W,
                         const std::string &Sig) -> const std::string * {
        auto SigIt = W.Values.find(Sig);
        if (SigIt == W.Values.end())
          return nullptr;
        auto CycIt = SigIt->second.find(C);
        return CycIt == SigIt->second.end() ? nullptr : &CycIt->second;
      };
      const std::string *Va = ValueAt(A, Name);
      const std::string *Vb = ValueAt(B, Name);
      if (!Va && !Vb)
        continue;
      ++Compared;
      std::string Sa = Va ? *Va : "<missing>";
      std::string Sb = Vb ? *Vb : "<missing>";
      if (Sa == Sb)
        continue;
      ++Divergences;
      if (!HaveFirst) {
        HaveFirst = true;
        FirstCycle = C;
        FirstSignal = Name;
        FirstA = Sa;
        FirstB = Sb;
      }
      if (Details.size() < 32) {
        Json Entry = Json::object();
        Entry.set("cycle", C);
        Entry.set("signal", Name);
        Entry.set("expected", Sa);
        Entry.set("actual", Sb);
        Details.push(std::move(Entry));
      }
    }

  bool CycleMismatch = A.Cycles != B.Cycles;
  bool Diverged = Divergences > 0 || CycleMismatch;

  if (AsJson) {
    Json Doc = Json::object();
    Doc.set("schema", "reticle-wave-diff-v1");
    Doc.set("a", Paths[0]);
    Doc.set("b", Paths[1]);
    Doc.set("cycles_a", A.Cycles);
    Doc.set("cycles_b", B.Cycles);
    Doc.set("signals_compared", static_cast<uint64_t>(Shared.size()));
    Doc.set("values_compared", Compared);
    Doc.set("divergences", Divergences);
    if (HaveFirst) {
      Json First = Json::object();
      First.set("cycle", FirstCycle);
      First.set("signal", FirstSignal);
      First.set("expected", FirstA);
      First.set("actual", FirstB);
      Doc.set("first_divergence", std::move(First));
    }
    Doc.set("details", std::move(Details));
    Doc.set("identical", !Diverged);
    std::fputs((Doc.str(2) + "\n").c_str(), stdout);
  } else {
    if (HaveFirst)
      std::printf("wave diff: first divergence at cycle %llu, signal '%s': "
                  "expected %s, actual %s\n",
                  static_cast<unsigned long long>(FirstCycle),
                  FirstSignal.c_str(), FirstA.c_str(), FirstB.c_str());
    if (CycleMismatch)
      std::printf("wave diff: cycle count mismatch: %llu vs %llu\n",
                  static_cast<unsigned long long>(A.Cycles),
                  static_cast<unsigned long long>(B.Cycles));
    std::printf("wave diff: %llu divergence(s) over %llu value(s), "
                "%zu signal(s), %llu cycle(s)\n",
                static_cast<unsigned long long>(Divergences),
                static_cast<unsigned long long>(Compared), Shared.size(),
                static_cast<unsigned long long>(Cycles));
  }
  return Diverged ? 1 : 0;
}

/// One parsed coverage doc: space -> bin -> count, plus the program tag.
struct CoverageDoc {
  std::string Program;
  std::map<std::string, std::map<std::string, int64_t>> Spaces;
};

/// Loads a "reticle-coverage-v1" document (or any document embedding the
/// same {"spaces": {...}} shape at top level, e.g. a batch summary's
/// coverage key is NOT accepted — the ratchet pins standalone docs).
bool loadCoverage(const std::string &Path, CoverageDoc &Out,
                  std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = Path + ": cannot open";
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Result<Json> Doc = Json::parse(Buffer.str());
  if (!Doc) {
    Error = Path + ": malformed JSON: " + Doc.error();
    return false;
  }
  const Json &R = Doc.value();
  const Json *Schema = R.isObject() ? R.find("schema") : nullptr;
  if (!Schema || !Schema->isString() ||
      Schema->asString() != "reticle-coverage-v1") {
    Error = Path + ": schema is not \"reticle-coverage-v1\"";
    return false;
  }
  if (const Json *Program = R.find("program");
      Program && Program->isString())
    Out.Program = Program->asString();
  const Json *Spaces = R.find("spaces");
  if (!Spaces || !Spaces->isObject()) {
    Error = Path + ": missing 'spaces' object";
    return false;
  }
  for (const auto &[SpaceName, Space] : Spaces->members()) {
    const Json *Bins = Space.isObject() ? Space.find("bins") : nullptr;
    if (!Bins || !Bins->isObject()) {
      Error = Path + ": space '" + SpaceName + "' has no 'bins' object";
      return false;
    }
    auto &Dst = Out.Spaces[SpaceName];
    for (const auto &[BinName, Count] : Bins->members()) {
      if (!Count.isNumber()) {
        Error = Path + ": bin '" + SpaceName + "/" + BinName +
                "' has a non-numeric count";
        return false;
      }
      Dst[BinName] += Count.asInt();
    }
  }
  return true;
}

/// Serializes a coverage map back into a "reticle-coverage-v1" document
/// (mirrors obs::coverageDoc; duplicated here so json_check stays a pure
/// document tool over the published schema).
Json coverageDocJson(const CoverageDoc &Doc) {
  Json SpacesJson = Json::object();
  int64_t TotalBins = 0, TotalHit = 0;
  for (const auto &[SpaceName, Bins] : Doc.Spaces) {
    Json BinsJson = Json::object();
    int64_t Hit = 0;
    for (const auto &[BinName, Count] : Bins) {
      BinsJson.set(BinName, Count);
      if (Count > 0)
        ++Hit;
    }
    Json SpaceJson = Json::object();
    SpaceJson.set("bins", std::move(BinsJson));
    SpaceJson.set("hit", Hit);
    SpaceJson.set("total", static_cast<int64_t>(Bins.size()));
    SpacesJson.set(SpaceName, std::move(SpaceJson));
    TotalBins += static_cast<int64_t>(Bins.size());
    TotalHit += Hit;
  }
  Json Out = Json::object();
  Out.set("schema", "reticle-coverage-v1");
  Out.set("program", Doc.Program);
  Out.set("spaces", std::move(SpacesJson));
  Json Totals = Json::object();
  Totals.set("spaces", static_cast<int64_t>(Doc.Spaces.size()));
  Totals.set("bins", TotalBins);
  Totals.set("hit", TotalHit);
  Out.set("totals", std::move(Totals));
  return Out;
}

/// `json_check coverage_merge <a.json> <b.json> ...`: unions N coverage
/// docs (bins summed) and writes the merged "reticle-coverage-v1" doc to
/// stdout. The merge is a superset of every input by construction. Exit 0
/// on success, 2 when an input is unusable.
int runCoverageMerge(int Argc, char **Argv) {
  std::vector<std::string> Paths;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s coverage_merge <a.json> [<b.json> ...]\n",
                   Argv[0]);
      return 2;
    }
    Paths.push_back(Arg);
  }
  if (Paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s coverage_merge <a.json> [<b.json> ...]\n",
                 Argv[0]);
    return 2;
  }

  CoverageDoc Merged;
  std::string Error;
  for (const std::string &Path : Paths) {
    CoverageDoc One;
    if (!loadCoverage(Path, One, Error)) {
      std::fprintf(stderr, "json_check: %s\n", Error.c_str());
      return 2;
    }
    if (!Merged.Program.empty() && !One.Program.empty())
      Merged.Program += "+";
    Merged.Program += One.Program;
    for (const auto &[SpaceName, Bins] : One.Spaces) {
      auto &Dst = Merged.Spaces[SpaceName];
      for (const auto &[BinName, Count] : Bins)
        Dst[BinName] += Count;
    }
  }
  std::fputs((coverageDocJson(Merged).str(2) + "\n").c_str(), stdout);
  return 0;
}

/// `json_check coverage_diff <golden.json> <new.json>`: the coverage
/// ratchet. A bin hit in the golden doc but missing (or zero) in the new
/// doc is a LOST bin — coverage regressed. Bins newly hit only in the new
/// doc are reported as gained but do not fail; the ratchet only tightens.
/// Exit 0 when nothing was lost, 1 when coverage regressed, 2 when an
/// input is unusable — the diff(1) contract, like remark_diff/wave_diff.
int runCoverageDiff(int Argc, char **Argv) {
  std::vector<std::string> Paths;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s coverage_diff <golden.json> <new.json>\n",
                   Argv[0]);
      return 2;
    }
    Paths.push_back(Arg);
  }
  if (Paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: %s coverage_diff <golden.json> <new.json>\n",
                 Argv[0]);
    return 2;
  }

  CoverageDoc Golden, New;
  std::string Error;
  if (!loadCoverage(Paths[0], Golden, Error) ||
      !loadCoverage(Paths[1], New, Error)) {
    std::fprintf(stderr, "json_check: %s\n", Error.c_str());
    return 2;
  }

  auto HitCount = [](const CoverageDoc &Doc, const std::string &Space,
                     const std::string &Bin) -> int64_t {
    auto SpaceIt = Doc.Spaces.find(Space);
    if (SpaceIt == Doc.Spaces.end())
      return 0;
    auto BinIt = SpaceIt->second.find(Bin);
    return BinIt == SpaceIt->second.end() ? 0 : BinIt->second;
  };

  uint64_t Lost = 0, Gained = 0, Kept = 0;
  for (const auto &[SpaceName, Bins] : Golden.Spaces)
    for (const auto &[BinName, Count] : Bins) {
      if (Count <= 0)
        continue; // declared-only bins are holes, not coverage to keep
      if (HitCount(New, SpaceName, BinName) > 0) {
        ++Kept;
      } else {
        ++Lost;
        std::printf("- %s/%s\n", SpaceName.c_str(), BinName.c_str());
      }
    }
  for (const auto &[SpaceName, Bins] : New.Spaces)
    for (const auto &[BinName, Count] : Bins) {
      if (Count <= 0)
        continue;
      if (HitCount(Golden, SpaceName, BinName) == 0) {
        ++Gained;
        std::printf("+ %s/%s\n", SpaceName.c_str(), BinName.c_str());
      }
    }
  std::printf("coverage diff: %llu lost, %llu gained, %llu kept\n",
              static_cast<unsigned long long>(Lost),
              static_cast<unsigned long long>(Gained),
              static_cast<unsigned long long>(Kept));
  return Lost ? 1 : 0;
}

/// One hot-instruction entry of a "reticle-profile-v1" doc, keyed for the
/// {segment, offset} join.
struct ProfileSiteRecord {
  std::string Op;
  std::string Source; ///< empty when unattributed (JSON null)
  int64_t Count = 0;
};

/// One parsed "reticle-profile-v1" document: the deterministic fields
/// only — sampled wall times are not loaded, they may not reproduce.
struct ProfileDoc {
  std::string Program;
  int64_t Cycles = 0;
  int64_t Total = 0;
  int64_t Attributed = 0;
  std::map<std::pair<std::string, int64_t>, ProfileSiteRecord> Sites;
};

bool loadProfile(const std::string &Path, ProfileDoc &Out,
                 std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = Path + ": cannot open";
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Result<Json> Doc = Json::parse(Buffer.str());
  if (!Doc) {
    Error = Path + ": malformed JSON: " + Doc.error();
    return false;
  }
  const Json &R = Doc.value();
  const Json *Schema = R.isObject() ? R.find("schema") : nullptr;
  if (!Schema || !Schema->isString() ||
      Schema->asString() != "reticle-profile-v1") {
    Error = Path + ": schema is not \"reticle-profile-v1\"";
    return false;
  }
  if (const Json *Program = R.find("program");
      Program && Program->isString())
    Out.Program = Program->asString();
  if (const Json *Cycles = R.find("cycles"); Cycles && Cycles->isNumber())
    Out.Cycles = Cycles->asInt();
  if (const Json *Total = lookup(R, "ops.total"); Total && Total->isNumber())
    Out.Total = Total->asInt();
  if (const Json *Attr = lookup(R, "ops.attributed");
      Attr && Attr->isNumber())
    Out.Attributed = Attr->asInt();
  const Json *Hot = R.find("hot_instructions");
  if (!Hot || !Hot->isArray()) {
    Error = Path + ": missing 'hot_instructions' array";
    return false;
  }
  for (const Json &Entry : Hot->items()) {
    const Json *Segment = Entry.isObject() ? Entry.find("segment") : nullptr;
    const Json *Offset = Entry.isObject() ? Entry.find("offset") : nullptr;
    if (!Segment || !Segment->isString() || !Offset || !Offset->isNumber()) {
      Error = Path + ": a hot_instructions entry lacks segment/offset";
      return false;
    }
    ProfileSiteRecord Rec;
    if (const Json *Op = Entry.find("op"); Op && Op->isString())
      Rec.Op = Op->asString();
    if (const Json *Source = Entry.find("source");
        Source && Source->isString())
      Rec.Source = Source->asString();
    if (const Json *Count = Entry.find("count"); Count && Count->isNumber())
      Rec.Count = Count->asInt();
    Out.Sites[{Segment->asString(), Offset->asInt()}] = std::move(Rec);
  }
  return true;
}

/// `json_check profile_diff [--json] a.json b.json`: joins two sim-VM
/// profiles on {segment, offset} and reports sites that appeared,
/// vanished, or changed opcode/source/count; sampled timing is ignored.
/// Exit 0 identical, 1 different, 2 unusable input.
int runProfileDiff(int Argc, char **Argv) {
  bool AsJson = false;
  std::vector<std::string> Paths;
  auto Usage = [&] {
    std::fprintf(stderr, "usage: %s profile_diff [--json] <a.json> <b.json>\n",
                 Argv[0]);
    return 2;
  };
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json")
      AsJson = true;
    else if (!Arg.empty() && Arg[0] == '-')
      return Usage();
    else
      Paths.push_back(Arg);
  }
  if (Paths.size() != 2)
    return Usage();

  ProfileDoc A, B;
  std::string Error;
  if (!loadProfile(Paths[0], A, Error) || !loadProfile(Paths[1], B, Error)) {
    std::fprintf(stderr, "json_check: %s\n", Error.c_str());
    return 2;
  }

  uint64_t Added = 0, Removed = 0, Changed = 0, Unchanged = 0;
  Json Details = Json::array();
  std::string Text;
  auto SiteLabel = [](const std::pair<std::string, int64_t> &Key,
                      const ProfileSiteRecord &Rec) {
    std::string Label = Key.first + "+" + std::to_string(Key.second) + " " +
                        Rec.Op + " x" + std::to_string(Rec.Count);
    if (!Rec.Source.empty())
      Label += " (" + Rec.Source + ")";
    return Label;
  };
  auto Report = [&](const char *St,
                    const std::pair<std::string, int64_t> &Key,
                    const ProfileSiteRecord &Rec,
                    const ProfileSiteRecord *Other) {
    const char *Mark = std::string(St) == "added"     ? "+"
                       : std::string(St) == "removed" ? "-"
                                                      : "~";
    Text += std::string(Mark) + " " + SiteLabel(Key, Rec);
    if (Other)
      Text += "\n  -> " + SiteLabel(Key, *Other);
    Text += "\n";
    if (Details.size() < 32) {
      Json Entry = Json::object();
      Entry.set("status", St);
      Entry.set("segment", Key.first);
      Entry.set("offset", Key.second);
      Entry.set("op", Rec.Op);
      Entry.set("count", Rec.Count);
      if (!Rec.Source.empty())
        Entry.set("source", Rec.Source);
      if (Other) {
        Json Now = Json::object();
        Now.set("op", Other->Op);
        Now.set("count", Other->Count);
        if (!Other->Source.empty())
          Now.set("source", Other->Source);
        Entry.set("b", std::move(Now));
      }
      Details.push(std::move(Entry));
    }
  };

  for (const auto &[Key, RecA] : A.Sites) {
    auto It = B.Sites.find(Key);
    if (It == B.Sites.end()) {
      ++Removed;
      Report("removed", Key, RecA, nullptr);
      continue;
    }
    const ProfileSiteRecord &RecB = It->second;
    if (RecA.Op == RecB.Op && RecA.Source == RecB.Source &&
        RecA.Count == RecB.Count) {
      ++Unchanged;
    } else {
      ++Changed;
      Report("changed", Key, RecA, &RecB);
    }
  }
  for (const auto &[Key, RecB] : B.Sites)
    if (!A.Sites.count(Key)) {
      ++Added;
      Report("added", Key, RecB, nullptr);
    }

  bool ScalarsDiffer = A.Cycles != B.Cycles || A.Total != B.Total ||
                       A.Attributed != B.Attributed;
  bool Differ = ScalarsDiffer || Added + Removed + Changed > 0;

  if (AsJson) {
    Json Doc = Json::object();
    Doc.set("schema", "reticle-profile-diff-v1");
    Doc.set("a", Paths[0]);
    Doc.set("b", Paths[1]);
    Doc.set("cycles_a", A.Cycles);
    Doc.set("cycles_b", B.Cycles);
    Doc.set("ops_a", A.Total);
    Doc.set("ops_b", B.Total);
    Doc.set("added", Added);
    Doc.set("removed", Removed);
    Doc.set("changed", Changed);
    Doc.set("unchanged", Unchanged);
    Doc.set("details", std::move(Details));
    Doc.set("identical", !Differ);
    std::fputs((Doc.str(2) + "\n").c_str(), stdout);
  } else {
    std::fputs(Text.c_str(), stdout);
    if (ScalarsDiffer)
      std::printf("profile diff: scalars differ: cycles %lld vs %lld, "
                  "ops %lld vs %lld, attributed %lld vs %lld\n",
                  static_cast<long long>(A.Cycles),
                  static_cast<long long>(B.Cycles),
                  static_cast<long long>(A.Total),
                  static_cast<long long>(B.Total),
                  static_cast<long long>(A.Attributed),
                  static_cast<long long>(B.Attributed));
    std::printf("profile diff: %llu added, %llu removed, %llu changed, "
                "%llu unchanged\n",
                static_cast<unsigned long long>(Added),
                static_cast<unsigned long long>(Removed),
                static_cast<unsigned long long>(Changed),
                static_cast<unsigned long long>(Unchanged));
  }
  return Differ ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1 && std::string(Argv[1]) == "remark_diff")
    return runRemarkDiff(Argc, Argv);
  if (Argc > 1 && std::string(Argv[1]) == "wave_diff")
    return runWaveDiff(Argc, Argv);
  if (Argc > 1 && std::string(Argv[1]) == "coverage_merge")
    return runCoverageMerge(Argc, Argv);
  if (Argc > 1 && std::string(Argv[1]) == "coverage_diff")
    return runCoverageDiff(Argc, Argv);
  if (Argc > 1 && std::string(Argv[1]) == "profile_diff")
    return runProfileDiff(Argc, Argv);
  std::string FilePath;
  std::vector<std::string> Required, NonEmpty, Events, Remarks;
  bool Jsonl = false;
  bool BatchSummary = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--jsonl")
      Jsonl = true;
    else if (Arg == "--batch-summary")
      BatchSummary = true;
    else if (Arg.rfind("--require=", 0) == 0)
      Required.push_back(Arg.substr(10));
    else if (Arg.rfind("--nonempty=", 0) == 0)
      NonEmpty.push_back(Arg.substr(11));
    else if (Arg.rfind("--has-event=", 0) == 0)
      Events.push_back(Arg.substr(12));
    else if (Arg.rfind("--has-remark=", 0) == 0)
      Remarks.push_back(Arg.substr(13));
    else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--jsonl] [--require=<path>] "
                   "[--nonempty=<path>] [--has-event=<name>] "
                   "[--has-remark=<stage>] [--batch-summary] "
                   "<file.json>\n"
                   "       %s remark_diff [--json] <a.jsonl> <b.jsonl>\n"
                   "       %s wave_diff [--json] [--all-signals] "
                   "<a.jsonl> <b.jsonl>\n"
                   "       %s coverage_merge <a.json> [<b.json> ...]\n"
                   "       %s coverage_diff <golden.json> <new.json>\n"
                   "       %s profile_diff [--json] <a.json> <b.json>\n",
                   Argv[0], Argv[0], Argv[0], Argv[0], Argv[0], Argv[0]);
      return 2;
    } else
      FilePath = Arg;
  }
  if (FilePath.empty()) {
    std::fprintf(stderr, "json_check: no input file\n");
    return 2;
  }

  std::ifstream In(FilePath);
  if (!In)
    return fail(FilePath, "cannot open");
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  // Parse: either one document, or one document per non-empty line.
  std::vector<Json> Docs;
  if (Jsonl) {
    std::istringstream Lines(Buffer.str());
    std::string Line;
    size_t LineNo = 0;
    while (std::getline(Lines, Line)) {
      ++LineNo;
      if (Line.find_first_not_of(" \t\r") == std::string::npos)
        continue;
      Result<Json> Doc = Json::parse(Line);
      if (!Doc)
        return fail(FilePath, "line " + std::to_string(LineNo) +
                                  ": malformed JSON: " + Doc.error());
      Docs.push_back(Doc.take());
    }
  } else {
    Result<Json> Doc = Json::parse(Buffer.str());
    if (!Doc)
      return fail(FilePath, "malformed JSON: " + Doc.error());
    Docs.push_back(Doc.take());
  }

  if (BatchSummary)
    if (std::string Problem = checkBatchSummary(Docs.front());
        !Problem.empty())
      return fail(FilePath, "bad batch summary: " + Problem);

  for (const std::string &Path : Required)
    if (!anyLookup(Docs, Path))
      return fail(FilePath, "missing required key '" + Path + "'");

  for (const std::string &Path : NonEmpty) {
    bool Found = false, NonEmptyHit = false;
    for (const Json &Doc : Docs) {
      const Json *Node = lookup(Doc, Path);
      if (!Node)
        continue;
      Found = true;
      if (Node->size() != 0) {
        NonEmptyHit = true;
        break;
      }
    }
    if (!Found)
      return fail(FilePath, "missing required key '" + Path + "'");
    if (!NonEmptyHit)
      return fail(FilePath, "'" + Path + "' is empty");
  }

  if (!Events.empty()) {
    const Json *Trace = Docs.front().find("traceEvents");
    if (!Trace || !Trace->isArray())
      return fail(FilePath, "no traceEvents array");
    for (const std::string &Name : Events) {
      bool Found = false;
      for (const Json &Event : Trace->items()) {
        const Json *N = Event.isObject() ? Event.find("name") : nullptr;
        if (N && N->isString() && N->asString() == Name) {
          Found = true;
          break;
        }
      }
      if (!Found)
        return fail(FilePath, "no trace event named '" + Name + "'");
    }
  }

  for (const std::string &Stage : Remarks) {
    bool Found = false;
    for (const Json &Doc : Docs) {
      const Json *S = Doc.isObject() ? Doc.find("stage") : nullptr;
      if (S && S->isString() && S->asString() == Stage) {
        Found = true;
        break;
      }
    }
    if (!Found)
      return fail(FilePath, "no remark from stage '" + Stage + "'");
  }
  return 0;
}
